#include "core/experiment.h"

#include <algorithm>
#include <numeric>

#include "crypto/rng.h"
#include "obs/tracer.h"
#include "workload/secured45.h"

namespace lookaside::core {

const char* remedy_name(RemedyMode mode) {
  switch (mode) {
    case RemedyMode::kNone: return "dlv-baseline";
    case RemedyMode::kTxt: return "txt-signaling";
    case RemedyMode::kZBit: return "z-bit";
    case RemedyMode::kHashed: return "hashed-dlv";
  }
  return "?";
}

UniverseExperiment::UniverseExperiment(Options options)
    : options_(std::move(options)), network_(clock_) {
  workload::WorldOptions world_options;
  world_options.universe.size = options_.universe_size;
  world_options.universe.seed = options_.seed;
  world_options.seed = crypto::derive_seed(options_.seed, 0x0F0F);
  world_options.key_bits = options_.key_bits;
  world_options.dlv.negative_ttl = options_.dlv_negative_ttl;
  world_options.txt_signaling =
      options_.remedy == RemedyMode::kTxt &&
      options_.remedy_deployed_at_authorities;
  world_options.z_bit_signaling =
      options_.remedy == RemedyMode::kZBit &&
      options_.remedy_deployed_at_authorities;
  world_options.dlv.hashed_registration =
      options_.remedy == RemedyMode::kHashed;

  world_ = std::make_unique<workload::UniverseWorld>(world_options);
  world_->registry().attach_clock(clock_);
  world_->registry().set_store_observations(false);
  analyzer_ = std::make_unique<LeakageAnalyzer>(world_->registry());

  resolver::ResolverConfig config = options_.resolver_config;
  config.ns_fetch_probability = options_.ns_fetch_probability;
  switch (options_.remedy) {
    case RemedyMode::kTxt: config.honor_txt_dlv_signal = true; break;
    case RemedyMode::kZBit: config.honor_z_bit_signal = true; break;
    case RemedyMode::kHashed: config.hashed_dlv_queries = true; break;
    case RemedyMode::kNone: break;
  }
  resolver_ = std::make_unique<resolver::RecursiveResolver>(
      network_, world_->directory(), config);
  resolver_->set_root_trust_anchor(world_->root_trust_anchor());
  resolver_->set_dlv_trust_anchor(world_->registry().trust_anchor());
  stub_ = std::make_unique<workload::StubClient>(network_, *resolver_,
                                                 options_.stub);

  if (options_.tracer != nullptr) {
    options_.tracer->attach_clock(clock_);
    options_.tracer->attach_network(network_);
    world_->set_tracer(options_.tracer);
    resolver_->set_tracer(options_.tracer);
  }
}

void UniverseExperiment::visit_ranks(const std::vector<std::uint64_t>& ranks) {
  for (std::uint64_t rank : ranks) {
    (void)stub_->visit(world_->universe().domain_at(rank));
    ++domains_visited_;
  }
  analyzer_->set_domains_visited(domains_visited_);
}

LeakageReport UniverseExperiment::run_topn(std::uint64_t n) {
  std::vector<std::uint64_t> ranks(n);
  std::iota(ranks.begin(), ranks.end(), 1);
  visit_ranks(ranks);
  return analyzer_->report();
}

LeakageReport UniverseExperiment::run_topn_shuffled(
    std::uint64_t n, std::uint64_t shuffle_seed) {
  std::vector<std::uint64_t> ranks(n);
  std::iota(ranks.begin(), ranks.end(), 1);
  crypto::SplitMix64 rng(shuffle_seed);
  for (std::size_t i = ranks.size(); i > 1; --i) {
    std::swap(ranks[i - 1], ranks[rng.next_below(i)]);
  }
  visit_ranks(ranks);
  return analyzer_->report();
}

PhaseMetrics UniverseExperiment::metrics() const {
  PhaseMetrics out;
  out.response_seconds = clock_.now_seconds();
  out.megabytes = static_cast<double>(
                      network_.counters().value("bytes.total")) /
                  (1024.0 * 1024.0);
  out.queries = network_.counters().value("packets.query");
  return out;
}

SecuredRunResult run_secured_45(const resolver::ResolverConfig& config,
                                const std::string& config_name) {
  SecuredRunResult result;
  result.config_name = config_name;
  result.dlv_enabled = config.dlv_enabled();

  sim::SimClock clock;
  sim::Network network(clock);
  server::Testbed testbed(server::TestbedOptions{},
                          workload::secured_45_specs());
  dlv::DlvRegistry registry(dlv::DlvRegistry::Options{});
  registry.attach_clock(clock);
  for (const std::string& island : workload::secured_45_island_names()) {
    registry.deposit(dns::Name::parse(island),
                     testbed.signed_sld(island)->ds_for_parent());
  }
  // ISC's real registry held thousands of unrelated deposits, so NSEC
  // ranges were narrow and each of the 45 domains produced its own DLV
  // query. Model that zone density with filler deposits interleaving the
  // dataset (their DS content is never validated — only the NSEC chain
  // geometry matters).
  for (const server::SldSpec& spec : workload::secured_45_specs()) {
    const dns::Name name = dns::Name::parse(spec.name);
    const dns::Name filler = dns::Name::parse(
        std::string(name.label(0)) + "-x." +
        std::string(name.label(1)));
    registry.deposit(filler, dns::DsRdata{0, 8, 2, dns::Bytes(32, 0x77)});
  }
  testbed.directory().register_zone(
      registry.apex(),
      std::shared_ptr<sim::Endpoint>(&registry, [](sim::Endpoint*) {}));
  LeakageAnalyzer analyzer(registry);

  resolver::RecursiveResolver resolver(network, testbed.directory(), config);
  resolver.set_root_trust_anchor(testbed.root_trust_anchor());
  resolver.set_dlv_trust_anchor(registry.trust_anchor());

  for (const server::SldSpec& spec : workload::secured_45_specs()) {
    const auto outcome =
        resolver.resolve({dns::Name::parse(spec.name), dns::RRType::kA});
    ++result.domains;
    if (outcome.status == resolver::ValidationStatus::kSecure) {
      ++result.validated_secure;
      if (outcome.dlv.secured) ++result.validated_via_dlv;
    }
  }
  analyzer.set_domains_visited(result.domains);
  result.sent_to_dlv = analyzer.report().distinct_case1_domains +
                       analyzer.report().distinct_leaked_domains;
  return result;
}

}  // namespace lookaside::core
