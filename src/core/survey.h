// The paper's DNS-OARC 2015 operator survey (§5.2 "Practical
// Implications"): 56 respondents asked how they configure their recursives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lookaside::core {

/// One survey answer bucket.
struct SurveyBucket {
  std::string label;
  std::uint64_t respondents = 0;
  double percent = 0;
};

/// The configuration-practice question (package defaults / manual defaults /
/// own configuration).
[[nodiscard]] std::vector<SurveyBucket> survey_configuration_practice();

/// The trust-anchor question (ISC DLV vs other anchors).
[[nodiscard]] std::vector<SurveyBucket> survey_dlv_anchor_use();

/// Total respondents (56).
[[nodiscard]] std::uint64_t survey_total_respondents();

}  // namespace lookaside::core
