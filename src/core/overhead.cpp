#include "core/overhead.h"

namespace lookaside::core {

OverheadRow measure_overhead(std::uint64_t domains, RemedyMode remedy,
                             UniverseExperiment::Options experiment_options) {
  OverheadRow row;
  row.domains = domains;

  {
    UniverseExperiment::Options options = experiment_options;
    options.remedy = RemedyMode::kNone;
    UniverseExperiment baseline(options);
    (void)baseline.run_topn(domains);
    row.baseline = baseline.metrics();
  }
  {
    UniverseExperiment::Options options = experiment_options;
    options.remedy = remedy;
    // The paper's overhead methodology: TXT is queried for every domain but
    // almost no domain serves it. The Z bit rides existing responses, so
    // deployment is free and stays on.
    options.remedy_deployed_at_authorities = remedy != RemedyMode::kTxt;
    UniverseExperiment with_remedy(options);
    (void)with_remedy.run_topn(domains);
    row.with_remedy = with_remedy.metrics();
  }
  return row;
}

std::map<std::string, std::uint64_t> query_type_counts(
    const sim::Network& network) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : network.counters().entries()) {
    if (name.rfind("query.", 0) == 0) {
      out[name.substr(6)] = value;
    }
  }
  return out;
}

}  // namespace lookaside::core
