// Leakage model and analyzer — the paper's central measurement.
//
// Section 3 defines two cases for a query reaching the DLV server:
//   Case-1: the queried domain HAS a DLV record deposited — the server was
//           going to be involved anyway; "no worse than today's primary DNS
//           resolution".
//   Case-2: the domain has NO DLV record — the server observes the user's
//           browsing while providing zero validation utility. This is the
//           privacy leak.
//
// The analyzer taps a DlvRegistry's observation stream and classifies every
// query, tracking distinct domains so Fig. 8/9-style counts come out
// directly.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "dlv/registry.h"

namespace lookaside::core {

/// Aggregated view of what the DLV operator learned.
struct LeakageReport {
  std::uint64_t domains_visited = 0;      // stub-level distinct domains
  std::uint64_t dlv_queries = 0;          // total queries observed
  std::uint64_t case1_queries = 0;        // had a record ("No error")
  std::uint64_t case2_queries = 0;        // no record ("No such name")
  std::uint64_t distinct_leaked_domains = 0;   // distinct Case-2 domains
  std::uint64_t distinct_case1_domains = 0;

  /// Fig. 9's y-axis: distinct leaked domains / domains visited.
  [[nodiscard]] double leaked_proportion() const {
    return domains_visited == 0
               ? 0.0
               : static_cast<double>(distinct_leaked_domains) /
                     static_cast<double>(domains_visited);
  }

  /// §5.3's utility metric: fraction of DLV queries answered "No error".
  [[nodiscard]] double utility_fraction() const {
    return dlv_queries == 0 ? 0.0
                            : static_cast<double>(case1_queries) /
                                  static_cast<double>(dlv_queries);
  }
};

/// Streams a registry's observations into a LeakageReport. Installs itself
/// as the registry's observer; per-query storage at the registry can stay
/// off for million-domain runs.
class LeakageAnalyzer {
 public:
  explicit LeakageAnalyzer(dlv::DlvRegistry& registry);

  /// Caller bookkeeping: how many distinct domains the stub visited.
  void set_domains_visited(std::uint64_t count) {
    report_.domains_visited = count;
  }

  [[nodiscard]] const LeakageReport& report() const { return report_; }

  /// The exact set of leaked (Case-2) domain identifiers — used by the
  /// "Order Matters" analysis to show that *which* domains leak depends on
  /// query order even when the count does not.
  [[nodiscard]] const std::set<std::string>& leaked_domains() const {
    return leaked_domains_;
  }

  /// Clears all accumulated state (does not detach from the registry).
  void reset();

 private:
  void observe(const dlv::Observation& observation);

  LeakageReport report_;
  // Distinct identifiers. In clear mode these are domain names; in hashed
  // mode (no recoverable domain) the query name stands in.
  std::set<std::string> leaked_domains_;
  std::set<std::string> case1_domains_;
};

}  // namespace lookaside::core
