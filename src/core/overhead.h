// Remedy-overhead measurement (paper §6.2.3: Tables 4-5, Figs. 10-11).
//
// Methodology follows the paper: run the workload under plain DLV
// (baseline), run it again with a remedy active, and report the deltas in
// the paper's three metrics — response time (s), traffic volume (MB) and
// issued queries. For the TXT remedy the authorities do NOT serve the TXT
// record (matching the paper's deployment reality), so the remedy's cost is
// paid on every domain while its suppression benefit is not realized.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace lookaside::core {

/// One Table 5 row.
struct OverheadRow {
  std::uint64_t domains = 0;
  PhaseMetrics baseline;
  PhaseMetrics with_remedy;

  [[nodiscard]] double time_overhead() const {
    return with_remedy.response_seconds - baseline.response_seconds;
  }
  [[nodiscard]] double traffic_overhead() const {
    return with_remedy.megabytes - baseline.megabytes;
  }
  [[nodiscard]] std::int64_t query_overhead() const {
    return static_cast<std::int64_t>(with_remedy.queries) -
           static_cast<std::int64_t>(baseline.queries);
  }
  [[nodiscard]] double time_ratio() const {
    return baseline.response_seconds == 0
               ? 0
               : time_overhead() / baseline.response_seconds;
  }
  [[nodiscard]] double traffic_ratio() const {
    return baseline.megabytes == 0 ? 0
                                   : traffic_overhead() / baseline.megabytes;
  }
  [[nodiscard]] double query_ratio() const {
    return baseline.queries == 0
               ? 0
               : static_cast<double>(query_overhead()) /
                     static_cast<double>(baseline.queries);
  }
};

/// Runs baseline + remedy for `domains` top-ranked domains and returns the
/// row. `experiment_options` supplies shared settings; remedy and
/// deployment flags are overridden internally.
[[nodiscard]] OverheadRow measure_overhead(
    std::uint64_t domains, RemedyMode remedy,
    UniverseExperiment::Options experiment_options);

/// Per-query-type counts (Table 4) from one run.
[[nodiscard]] std::map<std::string, std::uint64_t> query_type_counts(
    const sim::Network& network);

}  // namespace lookaside::core
