// Dictionary-attack analysis of the privacy-preserving (hashed) DLV remedy
// (paper §6.2.4).
//
// A determined DLV operator can precompute hashes of candidate domain names
// and match them against observed hashed query labels. The paper argues the
// attack is impractical when the candidate space is large (≥350M domains)
// and that, even when it succeeds, it only identifies queries for domains
// *in the attacker's dictionary*. This module quantifies exactly that.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "dlv/registry.h"
#include "workload/universe.h"

namespace lookaside::core {

/// Outcome of one dictionary attack.
struct DictionaryAttackResult {
  std::uint64_t observed_hashes = 0;      // distinct hashed labels observed
  std::uint64_t dictionary_size = 0;
  std::uint64_t recovered = 0;            // hashes inverted via dictionary
  std::uint64_t hash_computations = 0;    // attacker work

  [[nodiscard]] double recovery_rate() const {
    return observed_hashes == 0 ? 0.0
                                : static_cast<double>(recovered) /
                                      static_cast<double>(observed_hashes);
  }
};

/// The attacker: precomputes hashed DLV names for every dictionary entry
/// and matches them against observed query names.
class DictionaryAttacker {
 public:
  DictionaryAttacker(dns::Name dlv_apex, std::vector<dns::Name> dictionary);

  /// Attempts to invert the observed hashed query names.
  [[nodiscard]] DictionaryAttackResult attack(
      const std::vector<dns::Name>& observed_query_names) const;

 private:
  dns::Name apex_;
  std::vector<dns::Name> dictionary_;
};

/// Convenience: dictionary of the universe's top `count` domains,
/// optionally restricted to DNSSEC-enabled ones (the paper's refinement:
/// only signed domains plausibly use DLV).
[[nodiscard]] std::vector<dns::Name> universe_dictionary(
    const workload::Universe& universe, std::uint64_t count,
    bool dnssec_only);

}  // namespace lookaside::core
