#include "core/dictionary.h"

#include <unordered_set>

namespace lookaside::core {

DictionaryAttacker::DictionaryAttacker(dns::Name dlv_apex,
                                       std::vector<dns::Name> dictionary)
    : apex_(std::move(dlv_apex)), dictionary_(std::move(dictionary)) {}

DictionaryAttackResult DictionaryAttacker::attack(
    const std::vector<dns::Name>& observed_query_names) const {
  DictionaryAttackResult result;
  result.dictionary_size = dictionary_.size();

  std::unordered_set<std::string> observed;
  for (const dns::Name& name : observed_query_names) {
    observed.insert(name.internal_text());
  }
  result.observed_hashes = observed.size();

  for (const dns::Name& candidate : dictionary_) {
    ++result.hash_computations;
    const dns::Name hashed = dlv::hashed_dlv_name(candidate, apex_);
    if (observed.count(hashed.internal_text()) != 0) ++result.recovered;
  }
  return result;
}

std::vector<dns::Name> universe_dictionary(
    const workload::Universe& universe, std::uint64_t count,
    bool dnssec_only) {
  std::vector<dns::Name> out;
  for (std::uint64_t rank = 1; rank <= count && rank <= universe.size();
       ++rank) {
    if (dnssec_only) {
      const workload::DomainInfo info = universe.info(rank);
      if (!info.dnssec_signed) continue;
      out.push_back(info.name);
    } else {
      out.push_back(universe.domain_at(rank));
    }
  }
  return out;
}

}  // namespace lookaside::core
