#include "core/survey.h"

namespace lookaside::core {

namespace {
constexpr std::uint64_t kTotal = 56;

double pct(std::uint64_t count) {
  return 100.0 * static_cast<double>(count) / static_cast<double>(kTotal);
}
}  // namespace

std::uint64_t survey_total_respondents() { return kTotal; }

std::vector<SurveyBucket> survey_configuration_practice() {
  return {
      {"package-installer defaults (apt-get/yum)", 17, pct(17)},
      {"manual-install defaults", 5, pct(5)},
      {"own configuration", 34, pct(34)},
  };
}

std::vector<SurveyBucket> survey_dlv_anchor_use() {
  return {
      {"ISC's DLV server (dlv.isc.org)", 35, pct(35)},
      {"other trust anchors", 21, pct(21)},
  };
}

}  // namespace lookaside::core
