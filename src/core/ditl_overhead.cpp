#include "core/ditl_overhead.h"

namespace lookaside::core {

double measure_bytes_per_stub_query(RemedyMode remedy,
                                    std::uint64_t sample_domains,
                                    UniverseExperiment::Options options) {
  options.remedy = remedy;
  if (remedy == RemedyMode::kTxt) {
    options.remedy_deployed_at_authorities = false;  // paper methodology
  }
  UniverseExperiment experiment(options);
  (void)experiment.run_topn(sample_domains);
  const std::uint64_t stub_queries = experiment.stub().queries_sent();
  if (stub_queries == 0) return 0;
  return static_cast<double>(
             experiment.network().counters().value("bytes.total")) /
         static_cast<double>(stub_queries);
}

PerQueryCost calibrate_per_query_cost(std::uint64_t sample_domains,
                                      UniverseExperiment::Options options) {
  const double baseline =
      measure_bytes_per_stub_query(RemedyMode::kNone, sample_domains, options);
  const double txt =
      measure_bytes_per_stub_query(RemedyMode::kTxt, sample_domains, options);
  return per_query_cost_from_measurements(baseline, txt);
}

PerQueryCost per_query_cost_from_measurements(double baseline_bytes,
                                              double txt_bytes) {
  PerQueryCost cost;
  cost.baseline_bytes = baseline_bytes;
  cost.txt_extra_bytes = txt_bytes - baseline_bytes;
  if (cost.txt_extra_bytes < 0) cost.txt_extra_bytes = 0;
  return cost;
}

std::vector<DitlMinute> ditl_overhead_series(
    const workload::DitlOptions& trace, const PerQueryCost& cost) {
  const std::vector<std::uint64_t> rates =
      workload::ditl_per_minute_rates(trace);
  std::vector<DitlMinute> out;
  out.reserve(rates.size());
  std::uint64_t cumulative = 0;
  double baseline_mb = 0;
  double overhead_mb = 0;
  for (std::uint32_t minute = 0; minute < rates.size(); ++minute) {
    cumulative += rates[minute];
    baseline_mb += static_cast<double>(rates[minute]) * cost.baseline_bytes /
                   (1024.0 * 1024.0);
    overhead_mb += static_cast<double>(rates[minute]) * cost.txt_extra_bytes /
                   (1024.0 * 1024.0);
    DitlMinute entry;
    entry.minute = minute;
    entry.queries = rates[minute];
    entry.cumulative_queries = cumulative;
    entry.cumulative_baseline_mb = baseline_mb;
    entry.cumulative_overhead_mb = overhead_mb;
    out.push_back(entry);
  }
  return out;
}

}  // namespace lookaside::core
