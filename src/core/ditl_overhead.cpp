#include "core/ditl_overhead.h"

namespace lookaside::core {

PerQueryCost calibrate_per_query_cost(std::uint64_t sample_domains,
                                      UniverseExperiment::Options options) {
  PerQueryCost cost;
  double baseline_per_query = 0;
  double txt_per_query = 0;
  std::uint64_t baseline_stub_queries = 0;
  {
    UniverseExperiment::Options baseline_options = options;
    baseline_options.remedy = RemedyMode::kNone;
    UniverseExperiment baseline(baseline_options);
    (void)baseline.run_topn(sample_domains);
    baseline_stub_queries = baseline.stub().queries_sent();
    baseline_per_query =
        static_cast<double>(
            baseline.network().counters().value("bytes.total")) /
        static_cast<double>(baseline_stub_queries);
  }
  {
    UniverseExperiment::Options txt_options = options;
    txt_options.remedy = RemedyMode::kTxt;
    txt_options.remedy_deployed_at_authorities = false;  // paper methodology
    UniverseExperiment txt(txt_options);
    (void)txt.run_topn(sample_domains);
    txt_per_query =
        static_cast<double>(txt.network().counters().value("bytes.total")) /
        static_cast<double>(txt.stub().queries_sent());
  }
  cost.baseline_bytes = baseline_per_query;
  cost.txt_extra_bytes = txt_per_query - baseline_per_query;
  if (cost.txt_extra_bytes < 0) cost.txt_extra_bytes = 0;
  (void)baseline_stub_queries;
  return cost;
}

std::vector<DitlMinute> ditl_overhead_series(
    const workload::DitlOptions& trace, const PerQueryCost& cost) {
  const std::vector<std::uint64_t> rates =
      workload::ditl_per_minute_rates(trace);
  std::vector<DitlMinute> out;
  out.reserve(rates.size());
  std::uint64_t cumulative = 0;
  double baseline_mb = 0;
  double overhead_mb = 0;
  for (std::uint32_t minute = 0; minute < rates.size(); ++minute) {
    cumulative += rates[minute];
    baseline_mb += static_cast<double>(rates[minute]) * cost.baseline_bytes /
                   (1024.0 * 1024.0);
    overhead_mb += static_cast<double>(rates[minute]) * cost.txt_extra_bytes /
                   (1024.0 * 1024.0);
    DitlMinute entry;
    entry.minute = minute;
    entry.queries = rates[minute];
    entry.cumulative_queries = cumulative;
    entry.cumulative_baseline_mb = baseline_mb;
    entry.cumulative_overhead_mb = overhead_mb;
    out.push_back(entry);
  }
  return out;
}

}  // namespace lookaside::core
