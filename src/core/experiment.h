// Experiment harnesses wiring worlds, resolvers, stubs and analyzers —
// one per experiment family in the paper's evaluation.
#pragma once

#include <memory>
#include <vector>

#include "core/leakage.h"
#include "resolver/resolver.h"
#include "server/testbed.h"
#include "sim/clock.h"
#include "workload/stub.h"
#include "workload/universe_world.h"

namespace lookaside::obs {
class Tracer;
}

namespace lookaside::core {

/// The remedy under test (paper §6.2).
enum class RemedyMode {
  kNone,     // plain DLV (the baseline everything is compared against)
  kTxt,      // TXT dlv=0/1 signaling
  kZBit,     // spare header bit signaling
  kHashed,   // privacy-preserving hashed DLV queries
};

[[nodiscard]] const char* remedy_name(RemedyMode mode);

/// Phase metrics in the paper's Table 5 units.
struct PhaseMetrics {
  double response_seconds = 0;
  double megabytes = 0;
  std::uint64_t queries = 0;
};

/// Everything a universe experiment needs, assembled consistently.
class UniverseExperiment {
 public:
  struct Options {
    std::uint64_t universe_size = 1'000'000;
    std::uint64_t seed = 7;
    std::size_t key_bits = 256;
    RemedyMode remedy = RemedyMode::kNone;
    /// When measuring remedy *overhead* (Table 5), the TXT remedy runs
    /// against a world whose domains do NOT serve the TXT record — the
    /// paper measured exactly that ("not all domains are configured with
    /// the TXT record"), so the resolver pays the lookup without reaping
    /// suppression. Leave true for leakage-prevention runs.
    bool remedy_deployed_at_authorities = true;
    resolver::ResolverConfig resolver_config =
        resolver::ResolverConfig::bind_yum();
    workload::StubOptions stub;
    double ns_fetch_probability = 0.30;  // Table 4's NS query band
    std::uint32_t dlv_negative_ttl = 3600;
    /// Optional structured tracer; when set it is attached to the clock,
    /// the network, the world's servers and the resolver.
    obs::Tracer* tracer = nullptr;
  };

  explicit UniverseExperiment(Options options);

  /// Visits universe ranks [1, n] in rank order; returns the leakage view.
  LeakageReport run_topn(std::uint64_t n);

  /// Visits a shuffled permutation of [1, n] (§5.1 "Order Matters").
  LeakageReport run_topn_shuffled(std::uint64_t n, std::uint64_t shuffle_seed);

  /// Stub-observed metrics accumulated since construction (or last
  /// snapshot) — Table 5's three columns.
  [[nodiscard]] PhaseMetrics metrics() const;

  [[nodiscard]] workload::UniverseWorld& world() { return *world_; }
  [[nodiscard]] sim::Network& network() { return network_; }
  [[nodiscard]] resolver::RecursiveResolver& resolver() { return *resolver_; }
  [[nodiscard]] LeakageAnalyzer& analyzer() { return *analyzer_; }
  [[nodiscard]] workload::StubClient& stub() { return *stub_; }
  [[nodiscard]] sim::SimClock& clock() { return clock_; }

 private:
  void visit_ranks(const std::vector<std::uint64_t>& ranks);

  Options options_;
  sim::SimClock clock_;
  sim::Network network_;
  std::unique_ptr<workload::UniverseWorld> world_;
  std::unique_ptr<resolver::RecursiveResolver> resolver_;
  std::unique_ptr<workload::StubClient> stub_;
  std::unique_ptr<LeakageAnalyzer> analyzer_;
  std::uint64_t domains_visited_ = 0;
};

/// Secured-domain experiment (§5.2 / Table 3): the 45-domain dataset on a
/// real testbed under one resolver configuration.
struct SecuredRunResult {
  std::string config_name;
  bool dlv_enabled = false;
  std::uint64_t domains = 0;
  std::uint64_t sent_to_dlv = 0;           // distinct domains observed at DLV
  std::uint64_t validated_secure = 0;
  std::uint64_t validated_via_dlv = 0;
};

/// Runs the 45 secured domains under `config`; islands are deposited in the
/// DLV registry (they are the domains DLV exists for).
[[nodiscard]] SecuredRunResult run_secured_45(
    const resolver::ResolverConfig& config, const std::string& config_name);

}  // namespace lookaside::core
