#include "core/leakage.h"

namespace lookaside::core {

LeakageAnalyzer::LeakageAnalyzer(dlv::DlvRegistry& registry) {
  registry.set_observer(
      [this](const dlv::Observation& observation) { observe(observation); });
}

void LeakageAnalyzer::reset() {
  report_ = LeakageReport{};
  leaked_domains_.clear();
  case1_domains_.clear();
}

void LeakageAnalyzer::observe(const dlv::Observation& observation) {
  ++report_.dlv_queries;
  const std::string identifier = observation.domain.is_root()
                                     ? observation.query_name.internal_text()
                                     : observation.domain.internal_text();
  if (observation.had_record) {
    ++report_.case1_queries;
    if (case1_domains_.insert(identifier).second) {
      ++report_.distinct_case1_domains;
    }
  } else {
    ++report_.case2_queries;
    if (leaked_domains_.insert(identifier).second) {
      ++report_.distinct_leaked_domains;
    }
  }
}

}  // namespace lookaside::core
