// Per-endpoint latency model.
//
// Defaults follow DESIGN.md's calibration: root 30 ms, TLDs 25 ms, DLV 40 ms,
// SLD authoritative servers a deterministic hash of their id in [10, 80] ms,
// stub<->recursive 1 ms. All values are one-way.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

namespace lookaside::sim {

/// Maps endpoint ids to one-way latency in microseconds.
class LatencyModel {
 public:
  LatencyModel();

  /// One-way latency to reach `endpoint_id`.
  [[nodiscard]] std::uint64_t one_way_us(std::string_view endpoint_id) const;

  /// Overrides the latency for a specific endpoint.
  void set_latency_us(std::string endpoint_id, std::uint64_t one_way_us);

  /// Default hash-derived latency for endpoints without an override;
  /// exposed for tests.
  [[nodiscard]] static std::uint64_t hashed_default_us(
      std::string_view endpoint_id);

 private:
  std::unordered_map<std::string, std::uint64_t> overrides_;
};

}  // namespace lookaside::sim
