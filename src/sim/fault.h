// Deterministic fault injection for the simulated network (§8.4 chaos).
//
// A FaultPlan is a list of per-endpoint (or wildcard) FaultSpecs: packet
// loss on either leg of an exchange, latency spikes, virtual-time outage
// windows, response truncation, RCODE rewriting and RRSIG corruption. The
// FaultInjector evaluates the plan with a single seeded SplitMix64 stream,
// so the same (seed, plan) always yields the same packet-by-packet fate —
// every chaos experiment is exactly reproducible. Specs whose probabilities
// are all zero never consume randomness, so an empty or all-zero plan is
// bit-for-bit identical to running without the injector.
//
// The legacy Network::set_unreachable() is a degenerate plan entry (100%
// deterministic loss) kept in a hash set; there is one failure path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "crypto/rng.h"
#include "dns/rr_type.h"

namespace lookaside::sim {

/// Faults applied to exchanges with one endpoint (or "*" for all).
struct FaultSpec {
  std::string endpoint = "*";  // endpoint id or "*" wildcard

  /// P(query leg dropped): the server never sees the query.
  double loss = 0.0;
  /// P(response leg dropped): the server answered, the resolver never
  /// hears it — a "partial" timeout (the query still leaked).
  double response_loss = 0.0;

  /// Latency spike: with probability `spike_probability` the round trip
  /// gains `spike_us`. A spike that pushes the round trip past the
  /// caller's timeout becomes a partial timeout.
  double spike_probability = 0.0;
  std::uint64_t spike_us = 0;

  /// Hard outage window on the virtual clock: every query in
  /// [outage_start_us, outage_end_us) is dropped deterministically
  /// (no randomness consumed). end == 0 disables the window.
  std::uint64_t outage_start_us = 0;
  std::uint64_t outage_end_us = 0;

  /// P(response truncated): TC bit set, sections emptied (retryable).
  double truncate = 0.0;

  /// P(response RCODE rewritten to `mangle_rcode`, sections emptied).
  double mangle = 0.0;
  dns::RCode mangle_rcode = dns::RCode::kServFail;

  /// P(RRSIG signatures corrupted in the response) — exercises the
  /// validator's bogus path end to end.
  double rrsig_corrupt = 0.0;

  /// True when every knob is zero (the spec can never fire).
  [[nodiscard]] bool all_zero() const;

  /// Parses the textual spec grammar (documented in DESIGN.md):
  ///   <endpoint|*> [loss=P] [rloss=P] [spike=P:DUR] [outage=DUR..DUR]
  ///                [truncate=P] [rcode=NAME:P] [corrupt=P]
  /// where P is a probability in [0,1] and DUR is <number>{us|ms|s}.
  /// Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<FaultSpec> parse(std::string_view text);
};

/// A seed plus the spec list. Value-semantic; install on a Network via
/// Network::set_fault_plan().
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> specs;

  void add(FaultSpec spec) { specs.push_back(std::move(spec)); }

  /// True when no spec can ever fire (all-zero plan == faults off).
  [[nodiscard]] bool inert() const;
};

/// What the injector decided for one exchange attempt.
struct FaultDecision {
  bool drop_query = false;     // query leg lost (server never contacted)
  bool drop_response = false;  // response leg lost (server DID answer)
  std::uint64_t added_latency_us = 0;
  bool truncate = false;
  std::optional<dns::RCode> rewrite_rcode;
  bool corrupt_rrsigs = false;
  const char* cause = "";  // "unreachable", "outage", "loss", ...

  [[nodiscard]] bool faulted() const {
    return drop_query || drop_response || added_latency_us != 0 || truncate ||
           rewrite_rcode.has_value() || corrupt_rrsigs;
  }
};

/// Evaluates a FaultPlan deterministically. All randomness comes from one
/// SplitMix64 stream consumed in exchange order; the simulator is
/// single-threaded, so (seed, plan, workload) fixes every decision.
class FaultInjector {
 public:
  FaultInjector() : rng_(1) {}

  /// Installs `plan` and reseeds the stream from plan.seed.
  void set_plan(FaultPlan plan);
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Degenerate 100% loss for one endpoint (no randomness consumed).
  void set_unreachable(const std::string& endpoint_id, bool unreachable);
  [[nodiscard]] bool is_unreachable(const std::string& endpoint_id) const {
    return unreachable_.count(endpoint_id) != 0;
  }

  /// Decides the fate of one exchange with `endpoint_id` at virtual time
  /// `now_us`. Endpoints matched by no spec return a default decision
  /// without touching the RNG.
  [[nodiscard]] FaultDecision decide(const std::string& endpoint_id,
                                     std::uint64_t now_us);

 private:
  FaultPlan plan_;
  bool plan_active_ = false;  // any spec can fire
  std::unordered_set<std::string> unreachable_;
  crypto::SplitMix64 rng_;
};

}  // namespace lookaside::sim
