#include "sim/latency.h"

namespace lookaside::sim {

namespace {

constexpr std::uint64_t kMsToUs = 1000;

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

LatencyModel::LatencyModel() = default;

std::uint64_t LatencyModel::hashed_default_us(std::string_view endpoint_id) {
  // SLD authoritative servers: deterministic in [10, 80] ms one-way.
  return (10 + fnv1a(endpoint_id) % 71) * kMsToUs;
}

std::uint64_t LatencyModel::one_way_us(std::string_view endpoint_id) const {
  const auto it = overrides_.find(std::string(endpoint_id));
  if (it != overrides_.end()) return it->second;
  if (endpoint_id == "root") return 30 * kMsToUs;
  if (endpoint_id.rfind("tld:", 0) == 0) return 25 * kMsToUs;
  if (endpoint_id.rfind("dlv:", 0) == 0) return 40 * kMsToUs;
  if (endpoint_id == "recursive" || endpoint_id == "stub") return 1 * kMsToUs;
  return hashed_default_us(endpoint_id);
}

void LatencyModel::set_latency_us(std::string endpoint_id,
                                  std::uint64_t one_way_us) {
  overrides_[std::move(endpoint_id)] = one_way_us;
}

}  // namespace lookaside::sim
