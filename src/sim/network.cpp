#include "sim/network.h"

#include <algorithm>

namespace lookaside::sim {

void Network::set_unreachable(const std::string& endpoint_id,
                              bool unreachable) {
  const auto it =
      std::find(unreachable_.begin(), unreachable_.end(), endpoint_id);
  if (unreachable && it == unreachable_.end()) {
    unreachable_.push_back(endpoint_id);
  } else if (!unreachable && it != unreachable_.end()) {
    unreachable_.erase(it);
  }
}

void Network::record(PacketRecord packet) {
  if (packet.is_query) {
    counters_.add("packets.query");
    counters_.add("bytes.query", packet.bytes);
    counters_.add("bytes.total", packet.bytes);
    if (packet.has_question) {
      counters_.add("query." + dns::rr_type_name(packet.qtype));
    }
    counters_.add("dest." + packet.to + ".queries");
  } else {
    counters_.add("packets.response");
    counters_.add("bytes.response", packet.bytes);
    counters_.add("bytes.total", packet.bytes);
    counters_.add("rcode." + dns::rcode_name(packet.rcode));
  }
  for (const auto& observer : observers_) observer(packet);
  if (capture_enabled_) capture_.push_back(std::move(packet));
}

std::optional<dns::Message> Network::exchange(const std::string& from,
                                              Endpoint& server,
                                              const dns::Message& query) {
  const std::string to = server.endpoint_id();
  const std::size_t query_bytes = dns::wire_size(query);

  PacketRecord query_record;
  query_record.time_us = clock_->now_us();
  query_record.from = from;
  query_record.to = to;
  query_record.bytes = query_bytes;
  query_record.is_query = true;
  if (!query.questions.empty()) {
    query_record.has_question = true;
    query_record.qname = query.question().name;
    query_record.qtype = query.question().type;
  }
  record(std::move(query_record));

  if (std::find(unreachable_.begin(), unreachable_.end(), to) !=
      unreachable_.end()) {
    clock_->advance_us(timeout_us_);
    counters_.add("timeouts");
    return std::nullopt;
  }

  std::uint64_t one_way = server.latency_override_us(query);
  if (one_way == 0) one_way = latency_.one_way_us(to);
  clock_->advance_us(one_way);
  const dns::Message response = server.handle_query(query);
  clock_->advance_us(one_way);

  const std::size_t response_bytes = dns::wire_size(response);

  PacketRecord response_record;
  response_record.time_us = clock_->now_us();
  response_record.from = to;
  response_record.to = from;
  response_record.bytes = response_bytes;
  response_record.is_query = false;
  if (!query.questions.empty()) {
    response_record.has_question = true;
    response_record.qname = query.question().name;
    response_record.qtype = query.question().type;
  }
  response_record.rcode = response.header.rcode;
  response_record.rtt_us = 2 * one_way;
  record(std::move(response_record));

  return response;
}

}  // namespace lookaside::sim
