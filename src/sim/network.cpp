#include "sim/network.h"

#include <utility>

namespace lookaside::sim {

void Network::record(PacketRecord packet) {
  if (packet.is_query) {
    counters_.add("packets.query");
    counters_.add("bytes.query", packet.bytes);
    counters_.add("bytes.total", packet.bytes);
    if (packet.has_question) {
      counters_.add("query." + dns::rr_type_name(packet.qtype));
    }
    counters_.add("dest." + packet.to + ".queries");
  } else {
    counters_.add("packets.response");
    counters_.add("bytes.response", packet.bytes);
    counters_.add("bytes.total", packet.bytes);
    counters_.add("rcode." + dns::rcode_name(packet.rcode));
  }
  for (const auto& observer : observers_) observer(packet);
  if (capture_enabled_) capture_.push_back(std::move(packet));
}

void Network::notify_fault(const dns::Message& query, const std::string& to,
                           const char* cause) {
  if (fault_observers_.empty()) return;
  FaultNotice notice;
  notice.time_us = clock_->now_us();
  notice.endpoint = to;
  notice.cause = cause;
  if (!query.questions.empty()) {
    notice.has_question = true;
    notice.qname = query.question().name;
    notice.qtype = query.question().type;
  }
  for (const auto& observer : fault_observers_) observer(notice);
}

void Network::charge_timeout(const dns::Message& query, const std::string& to,
                             std::uint64_t wait_us, const char* cause,
                             bool partial) {
  clock_->advance_us(wait_us);
  counters_.add("timeouts");
  if (partial) counters_.add("timeouts.partial");
  counters_.add("faults.dropped");
  notify_fault(query, to, cause);
}

std::optional<dns::Message> Network::exchange(const std::string& from,
                                              Endpoint& server,
                                              const dns::Message& query,
                                              std::uint64_t timeout_us) {
  const std::string to = server.endpoint_id();
  const std::uint64_t timeout = timeout_us != 0 ? timeout_us : timeout_us_;
  const std::size_t query_bytes = dns::wire_size(query);

  PacketRecord query_record;
  query_record.time_us = clock_->now_us();
  query_record.from = from;
  query_record.to = to;
  query_record.bytes = query_bytes;
  query_record.is_query = true;
  if (!query.questions.empty()) {
    query_record.has_question = true;
    query_record.qname = query.question().name;
    query_record.qtype = query.question().type;
  }
  record(std::move(query_record));

  FaultDecision fault = injector_.decide(to, clock_->now_us());
  if (fault.drop_query) {
    // The query never reaches the server; the caller waits out its timer.
    charge_timeout(query, to, timeout, fault.cause, /*partial=*/false);
    return std::nullopt;
  }

  std::uint64_t one_way = server.latency_override_us(query);
  if (one_way == 0) one_way = latency_.one_way_us(to);
  if (fault.added_latency_us != 0) counters_.add("faults.latency_spikes");

  clock_->advance_us(one_way);
  dns::Message response = server.handle_query(query);

  // Response-leg loss, or a latency spike that outlives the caller's timer:
  // the server answered (and the query leaked) but the caller gives up.
  const std::uint64_t round_trip = 2 * one_way + fault.added_latency_us;
  const bool spike_timeout = fault.added_latency_us != 0 &&
                             round_trip >= timeout;
  if (fault.drop_response || spike_timeout) {
    const std::uint64_t remaining = timeout > one_way ? timeout - one_way : 0;
    charge_timeout(query, to, remaining,
                   fault.drop_response ? fault.cause : "spike-timeout",
                   /*partial=*/true);
    return std::nullopt;
  }

  if (fault.rewrite_rcode.has_value()) {
    response.header.rcode = *fault.rewrite_rcode;
    response.answers.clear();
    response.authorities.clear();
    response.additionals.clear();
    counters_.add("faults.mangled");
    notify_fault(query, to, fault.cause);
  }
  if (fault.truncate) {
    response.header.tc = true;
    response.answers.clear();
    response.authorities.clear();
    response.additionals.clear();
    counters_.add("faults.truncated");
    notify_fault(query, to, "truncate");
  }
  if (fault.corrupt_rrsigs) {
    bool corrupted = false;
    for (auto* section : {&response.answers, &response.authorities}) {
      for (dns::ResourceRecord& rr : *section) {
        auto* rrsig = std::get_if<dns::RrsigRdata>(&rr.rdata);
        if (rrsig != nullptr && !rrsig->signature.empty()) {
          rrsig->signature[0] ^= 0xFF;
          corrupted = true;
        }
      }
    }
    if (corrupted) {
      counters_.add("faults.rrsig_corrupted");
      notify_fault(query, to, "rrsig-corrupt");
    }
  }

  clock_->advance_us(one_way + fault.added_latency_us);

  const std::size_t response_bytes = dns::wire_size(response);

  PacketRecord response_record;
  response_record.time_us = clock_->now_us();
  response_record.from = to;
  response_record.to = from;
  response_record.bytes = response_bytes;
  response_record.is_query = false;
  if (!query.questions.empty()) {
    response_record.has_question = true;
    response_record.qname = query.question().name;
    response_record.qtype = query.question().type;
  }
  response_record.rcode = response.header.rcode;
  response_record.rtt_us = round_trip;
  record(std::move(response_record));

  return response;
}

}  // namespace lookaside::sim
