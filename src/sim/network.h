// Simulated network: synchronous query/response exchanges between endpoints
// with byte-accurate accounting and an optional packet capture.
//
// This replaces the paper's real testbed (campus hosts, DigitalOcean/EC2
// VPSes). Leakage is a protocol property; the network's job is to (1) move
// wire-encoded messages, (2) advance the virtual clock by per-hop latency,
// and (3) account every query/byte so the overhead tables can be rebuilt.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dns/codec.h"
#include "dns/message.h"
#include "metrics/counters.h"
#include "sim/clock.h"
#include "sim/fault.h"
#include "sim/latency.h"

namespace lookaside::sim {

/// Anything that answers DNS queries: authoritative servers, DLV registries.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Stable identifier used for latency lookup and capture records.
  [[nodiscard]] virtual std::string endpoint_id() const = 0;

  /// Produces the response for `query`. Implementations are deterministic.
  [[nodiscard]] virtual dns::Message handle_query(const dns::Message& query) = 0;

  /// Optional per-query one-way latency override (microseconds). Lets a
  /// single endpoint object impersonate many servers with different
  /// latencies (the synthetic SLD universe). Zero means "use the model".
  [[nodiscard]] virtual std::uint64_t latency_override_us(
      const dns::Message& query) const {
    (void)query;
    return 0;
  }
};

/// One captured packet (a query or a response). Counter accounting, the
/// stored capture and streaming observers are all derived from this one
/// record inside Network::record(), so they can never disagree.
struct PacketRecord {
  std::uint64_t time_us = 0;
  std::string from;
  std::string to;
  std::size_t bytes = 0;
  bool is_query = false;
  bool has_question = false;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::kA;
  dns::RCode rcode = dns::RCode::kNoError;  // responses only
  std::uint64_t rtt_us = 0;                 // responses: full round trip
};

/// One injected fault, reported to fault observers (obs::Tracer bridges
/// these into `fault_injected` events).
struct FaultNotice {
  std::uint64_t time_us = 0;
  std::string endpoint;
  std::string cause;  // "unreachable", "outage", "loss", "rcode-rewrite", ...
  bool has_question = false;
  dns::Name qname;
  dns::RRType qtype = dns::RRType::kA;
};

/// The simulated network fabric.
class Network {
 public:
  explicit Network(SimClock& clock) : clock_(&clock) {}

  /// Performs a full query/response exchange with `server`:
  /// advances the clock by the round trip, accounts packets and bytes, and
  /// returns the decoded response. Returns nullopt after `timeout_us` of
  /// virtual time (0 = the network default) when the exchange is lost —
  /// server unreachable, fault-plan drop, or an in-window outage. The
  /// caller's per-attempt timeout is the retransmission timer: a resilient
  /// resolver passes its RTO so backoff shows up on the virtual clock.
  [[nodiscard]] std::optional<dns::Message> exchange(
      const std::string& from, Endpoint& server, const dns::Message& query,
      std::uint64_t timeout_us = 0);

  /// Marks/unmarks a server id as unreachable (models DLV outages, §8.4).
  /// Implemented as a degenerate fault-plan entry: 100% deterministic loss.
  void set_unreachable(const std::string& endpoint_id, bool unreachable) {
    injector_.set_unreachable(endpoint_id, unreachable);
  }

  /// Installs a seeded fault plan; replaces any previous plan and reseeds
  /// the injector's RNG, so (seed, plan) fixes every subsequent decision.
  void set_fault_plan(FaultPlan plan) { injector_.set_plan(std::move(plan)); }
  [[nodiscard]] FaultInjector& fault_injector() { return injector_; }

  /// Adds a streaming observer for injected faults (alongside any others).
  void add_fault_observer(std::function<void(const FaultNotice&)> observer) {
    if (observer) fault_observers_.push_back(std::move(observer));
  }

  /// Toggles in-memory packet capture (off by default; million-domain
  /// benches keep it off and rely on counters).
  void set_capture_enabled(bool enabled) { capture_enabled_ = enabled; }
  [[nodiscard]] const std::vector<PacketRecord>& capture() const {
    return capture_;
  }
  void clear_capture() { capture_.clear(); }

  /// Installs `observer` as the only streaming observer (invoked for every
  /// packet even when the stored capture is disabled). Passing an empty
  /// function clears all observers.
  void set_observer(std::function<void(const PacketRecord&)> observer) {
    observers_.clear();
    add_observer(std::move(observer));
  }

  /// Adds a streaming observer alongside any existing ones (e.g. a
  /// leakage analyzer plus an obs::Tracer bridge).
  void add_observer(std::function<void(const PacketRecord&)> observer) {
    if (observer) observers_.push_back(std::move(observer));
  }

  /// Counters: "query.<TYPE>", "packets.query", "packets.response",
  /// "bytes.query", "bytes.response", "bytes.total",
  /// "dest.<endpoint>.queries", "rcode.<NAME>", "timeouts",
  /// "timeouts.partial" (response leg lost — the query still leaked),
  /// "faults.dropped", "faults.mangled", "faults.truncated",
  /// "faults.rrsig_corrupted", "faults.latency_spikes". The resolver's
  /// retry layer adds "retries" to this same set so one CounterSet holds
  /// the whole fault/recovery story.
  [[nodiscard]] const metrics::CounterSet& counters() const { return counters_; }
  [[nodiscard]] metrics::CounterSet& counters() { return counters_; }

  [[nodiscard]] LatencyModel& latency() { return latency_; }
  [[nodiscard]] SimClock& clock() { return *clock_; }

  /// Query timeout charged when a server is unreachable (default 5 s).
  void set_timeout_us(std::uint64_t timeout_us) { timeout_us_ = timeout_us; }

 private:
  /// The single accounting path: updates counters, notifies observers and
  /// appends to the stored capture (when enabled) from one record.
  void record(PacketRecord record);

  /// Charges a lost exchange: waits out the timeout, counts it, tells the
  /// fault observers. `partial` marks response-leg losses.
  void charge_timeout(const dns::Message& query, const std::string& to,
                      std::uint64_t wait_us, const char* cause, bool partial);

  void notify_fault(const dns::Message& query, const std::string& to,
                    const char* cause);

  SimClock* clock_;
  LatencyModel latency_;
  metrics::CounterSet counters_;
  std::vector<PacketRecord> capture_;
  bool capture_enabled_ = false;
  std::vector<std::function<void(const PacketRecord&)>> observers_;
  std::vector<std::function<void(const FaultNotice&)>> fault_observers_;
  FaultInjector injector_;
  std::uint64_t timeout_us_ = 5'000'000;
};

}  // namespace lookaside::sim
