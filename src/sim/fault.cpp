#include "sim/fault.h"

#include <cstdlib>

namespace lookaside::sim {

namespace {

/// Splits `text` on whitespace runs.
std::vector<std::string_view> split_tokens(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ' && text[j] != '\t') ++j;
    if (j > i) out.push_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

bool parse_probability(std::string_view text, double* out) {
  const std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (value < 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

/// Parses "<number>{us|ms|s}" into microseconds.
bool parse_duration_us(std::string_view text, std::uint64_t* out) {
  const std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || value < 0.0) return false;
  const std::string_view suffix(end);
  double scale = 0.0;
  if (suffix == "us") scale = 1.0;
  else if (suffix == "ms") scale = 1e3;
  else if (suffix == "s") scale = 1e6;
  else return false;
  *out = static_cast<std::uint64_t>(value * scale);
  return true;
}

bool parse_rcode(std::string_view text, dns::RCode* out) {
  if (text == "SERVFAIL") { *out = dns::RCode::kServFail; return true; }
  if (text == "REFUSED") { *out = dns::RCode::kRefused; return true; }
  if (text == "NXDOMAIN") { *out = dns::RCode::kNxDomain; return true; }
  if (text == "FORMERR") { *out = dns::RCode::kFormErr; return true; }
  if (text == "NOTIMP") { *out = dns::RCode::kNotImp; return true; }
  return false;
}

}  // namespace

bool FaultSpec::all_zero() const {
  return loss == 0.0 && response_loss == 0.0 && spike_probability == 0.0 &&
         outage_end_us == 0 && truncate == 0.0 && mangle == 0.0 &&
         rrsig_corrupt == 0.0;
}

std::optional<FaultSpec> FaultSpec::parse(std::string_view text) {
  const std::vector<std::string_view> tokens = split_tokens(text);
  if (tokens.empty()) return std::nullopt;
  FaultSpec spec;
  spec.endpoint = std::string(tokens.front());
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "loss") {
      if (!parse_probability(value, &spec.loss)) return std::nullopt;
    } else if (key == "rloss") {
      if (!parse_probability(value, &spec.response_loss)) return std::nullopt;
    } else if (key == "truncate") {
      if (!parse_probability(value, &spec.truncate)) return std::nullopt;
    } else if (key == "corrupt") {
      if (!parse_probability(value, &spec.rrsig_corrupt)) return std::nullopt;
    } else if (key == "spike") {
      // spike=P:DUR
      const std::size_t colon = value.find(':');
      if (colon == std::string_view::npos) return std::nullopt;
      if (!parse_probability(value.substr(0, colon), &spec.spike_probability) ||
          !parse_duration_us(value.substr(colon + 1), &spec.spike_us)) {
        return std::nullopt;
      }
    } else if (key == "outage") {
      // outage=DUR..DUR
      const std::size_t dots = value.find("..");
      if (dots == std::string_view::npos) return std::nullopt;
      if (!parse_duration_us(value.substr(0, dots), &spec.outage_start_us) ||
          !parse_duration_us(value.substr(dots + 2), &spec.outage_end_us)) {
        return std::nullopt;
      }
      if (spec.outage_end_us <= spec.outage_start_us) return std::nullopt;
    } else if (key == "rcode") {
      // rcode=NAME:P
      const std::size_t colon = value.find(':');
      if (colon == std::string_view::npos) return std::nullopt;
      if (!parse_rcode(value.substr(0, colon), &spec.mangle_rcode) ||
          !parse_probability(value.substr(colon + 1), &spec.mangle)) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

bool FaultPlan::inert() const {
  for (const FaultSpec& spec : specs) {
    if (!spec.all_zero()) return false;
  }
  return true;
}

void FaultInjector::set_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  plan_active_ = !plan_.inert();
  rng_ = crypto::SplitMix64(plan_.seed);
}

void FaultInjector::set_unreachable(const std::string& endpoint_id,
                                    bool unreachable) {
  if (unreachable) {
    unreachable_.insert(endpoint_id);
  } else {
    unreachable_.erase(endpoint_id);
  }
}

FaultDecision FaultInjector::decide(const std::string& endpoint_id,
                                    std::uint64_t now_us) {
  FaultDecision decision;
  // Degenerate plan entries first: deterministic, no randomness consumed.
  if (!unreachable_.empty() && unreachable_.count(endpoint_id) != 0) {
    decision.drop_query = true;
    decision.cause = "unreachable";
    return decision;
  }
  if (!plan_active_) return decision;

  for (const FaultSpec& spec : plan_.specs) {
    if (spec.endpoint != "*" && spec.endpoint != endpoint_id) continue;
    if (spec.outage_end_us > spec.outage_start_us &&
        now_us >= spec.outage_start_us && now_us < spec.outage_end_us) {
      decision.drop_query = true;
      decision.cause = "outage";
      return decision;  // deterministic window, no RNG consumed
    }
    if (spec.loss > 0.0 && rng_.next_double() < spec.loss) {
      decision.drop_query = true;
      decision.cause = "loss";
      return decision;
    }
    if (spec.response_loss > 0.0 && rng_.next_double() < spec.response_loss) {
      decision.drop_response = true;
      decision.cause = "response-loss";
      // Response-leg faults still walk the remaining specs for latency:
      // the query is in flight either way. Mangling is moot, stop here.
      return decision;
    }
    if (spec.spike_probability > 0.0 &&
        rng_.next_double() < spec.spike_probability) {
      decision.added_latency_us += spec.spike_us;
      decision.cause = "latency-spike";
    }
    if (spec.truncate > 0.0 && rng_.next_double() < spec.truncate) {
      decision.truncate = true;
      decision.cause = "truncate";
    }
    if (spec.mangle > 0.0 && rng_.next_double() < spec.mangle) {
      decision.rewrite_rcode = spec.mangle_rcode;
      decision.cause = "rcode-rewrite";
    }
    if (spec.rrsig_corrupt > 0.0 && rng_.next_double() < spec.rrsig_corrupt) {
      decision.corrupt_rrsigs = true;
      decision.cause = "rrsig-corrupt";
    }
  }
  return decision;
}

}  // namespace lookaside::sim
