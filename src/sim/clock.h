// Deterministic simulation clock.
//
// All latency in the simulator is virtual: the network advances this clock
// by modeled per-hop delays, so the paper's "response time (seconds)" metric
// is exactly reproducible run to run.
#pragma once

#include <cstdint>

namespace lookaside::sim {

/// Monotonic virtual clock with microsecond resolution.
class SimClock {
 public:
  [[nodiscard]] std::uint64_t now_us() const { return now_us_; }
  [[nodiscard]] double now_seconds() const {
    return static_cast<double>(now_us_) / 1e6;
  }

  void advance_us(std::uint64_t delta_us) { now_us_ += delta_us; }
  void advance_seconds(double seconds) {
    advance_us(static_cast<std::uint64_t>(seconds * 1e6));
  }

 private:
  std::uint64_t now_us_ = 0;
};

}  // namespace lookaside::sim
