#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>

namespace lookaside::metrics {

void Histogram::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
  sum_ += sample;
}

double Histogram::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

void Histogram::merge(const Histogram& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
  sum_ += other.sum_;
}

void Histogram::clear() {
  samples_.clear();
  sorted_ = true;
  sum_ = 0;
}

}  // namespace lookaside::metrics
