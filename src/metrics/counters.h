// Named counter registry used across the simulator for query/byte accounting.
//
// A `CounterSet` is a small string->uint64 map with convenience arithmetic.
// It is deliberately value-semantic: experiment drivers snapshot a set before
// a phase and subtract afterwards to obtain per-phase deltas.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace lookaside::metrics {

/// A value-semantic collection of named monotonically increasing counters.
class CounterSet {
 public:
  /// Adds `delta` to counter `name`, creating it at zero if absent.
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Returns the current value of `name`, or 0 if it was never touched.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  /// Returns the sum of all counters whose name starts with `prefix`.
  [[nodiscard]] std::uint64_t total_with_prefix(std::string_view prefix) const;

  /// Returns `*this - other`, counter by counter (missing counters are 0).
  /// Counters that would go negative are clamped to zero, and the clamped
  /// magnitude is accumulated into a dedicated "counterset.underflow"
  /// counter in the result — deltas of monotonically increasing counters
  /// never underflow, so a non-zero value flags non-monotonic usage
  /// instead of hiding it.
  [[nodiscard]] CounterSet delta_since(const CounterSet& other) const;

  /// Name of the sentinel counter delta_since() emits on underflow.
  static constexpr const char* kUnderflowCounter = "counterset.underflow";

  /// Merges `other` into this set by addition.
  void merge(const CounterSet& other);

  /// All (name, value) pairs in lexicographic name order.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> entries() const;

  /// Drops every counter.
  void clear();

  [[nodiscard]] bool empty() const { return counters_.empty(); }

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

}  // namespace lookaside::metrics
