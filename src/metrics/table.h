// Paper-style fixed-width ASCII table printer.
//
// Every bench binary reproduces one of the paper's tables or figures; this
// printer renders rows the way the paper formats them (thousand separators,
// percentages, fixed decimals) so output can be compared side by side.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lookaside::metrics {

/// Builds and prints a right-aligned table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();

  Table& cell(std::string text);
  /// Integer cell with thousand separators ("67,838").
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  /// Fixed-decimal cell ("38.16").
  Table& cell(double value, int decimals = 2);
  /// Percentage cell ("18.68%").
  Table& percent_cell(double fraction, int decimals = 2);

  /// Renders the table (header, rule, rows) to `out`.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Formats an integer with thousand separators.
  static std::string with_commas(std::uint64_t value);
  /// Formats a double with `decimals` fixed digits.
  static std::string fixed(double value, int decimals);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lookaside::metrics
