// Minimal CSV emitter for figure series.
//
// Figure benches print their series both as an ASCII table and as CSV so
// downstream plotting (outside this repository) can regenerate the figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lookaside::metrics {

/// Accumulates rows of string cells and writes RFC 4180-style CSV.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Writes header + rows; fields containing commas/quotes are quoted.
  void write(std::ostream& out) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  static std::string escape(const std::string& field);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lookaside::metrics
