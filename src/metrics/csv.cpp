#include "metrics/csv.h"

#include <ostream>

namespace lookaside::metrics {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void CsvWriter::write(std::ostream& out) const {
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) out << ',';
      out << escape(cells[i]);
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace lookaside::metrics
