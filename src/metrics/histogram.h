// Streaming statistics accumulator with reservoir-free exact percentiles.
//
// Experiments in this repository are modest in sample count (<= a few
// million), so the histogram simply stores samples and sorts on demand.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lookaside::metrics {

/// Accumulates double-valued samples; supports mean/min/max/percentiles.
class Histogram {
 public:
  void add(double sample);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact percentile by nearest-rank; `p` in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  /// Folds another histogram's samples into this one (shard merge).
  void merge(const Histogram& other);

  void clear();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0;
};

}  // namespace lookaside::metrics
