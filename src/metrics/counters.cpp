#include "metrics/counters.h"

#include <algorithm>

namespace lookaside::metrics {

void CounterSet::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t CounterSet::value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::uint64_t CounterSet::total_with_prefix(std::string_view prefix) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    total += it->second;
  }
  return total;
}

CounterSet CounterSet::delta_since(const CounterSet& other) const {
  CounterSet out;
  std::uint64_t underflow = 0;
  for (const auto& [name, value] : counters_) {
    const std::uint64_t base = other.value(name);
    if (value >= base) {
      out.counters_[name] = value - base;
    } else {
      out.counters_[name] = 0;
      underflow += base - value;
    }
  }
  // Counters present only in the baseline underflow by their full value.
  for (const auto& [name, base] : other.counters_) {
    if (counters_.find(name) == counters_.end()) underflow += base;
  }
  if (underflow > 0) out.counters_[kUnderflowCounter] = underflow;
  return out;
}

void CounterSet::merge(const CounterSet& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterSet::entries() const {
  return {counters_.begin(), counters_.end()};
}

void CounterSet::clear() { counters_.clear(); }

}  // namespace lookaside::metrics
