#include "metrics/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace lookaside::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(std::uint64_t value) { return cell(with_commas(value)); }

Table& Table::cell(std::int64_t value) {
  if (value < 0) return cell("-" + with_commas(static_cast<std::uint64_t>(-value)));
  return cell(with_commas(static_cast<std::uint64_t>(value)));
}

Table& Table::cell(double value, int decimals) { return cell(fixed(value, decimals)); }

Table& Table::percent_cell(double fraction, int decimals) {
  return cell(fixed(fraction * 100.0, decimals) + "%");
}

std::string Table::with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int counted = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counted != 0 && counted % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counted;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::fixed(double value, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << value;
  return ss.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& text = i < cells.size() ? cells[i] : std::string{};
      out << (i == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[i]))
          << text;
    }
    out << " |\n";
  };
  print_row(headers_);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    out << (i == 0 ? "|-" : "-|-") << std::string(widths[i], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace lookaside::metrics
