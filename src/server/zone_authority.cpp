#include "server/zone_authority.h"

#include "obs/tracer.h"

namespace lookaside::server {

namespace {

void trace_outcome(obs::Tracer* tracer, const std::string& server,
                   const dns::Question& question, const char* outcome,
                   dns::RCode rcode) {
  if (tracer == nullptr) return;
  obs::Event event;
  event.kind = obs::EventKind::kAuthority;
  event.name = question.name.to_text();
  event.server = server;
  event.qtype = question.type;
  event.rcode = rcode;
  event.detail = outcome;
  tracer->emit(std::move(event));
}

}  // namespace

ZoneAuthority::ZoneAuthority(std::string endpoint_id,
                             std::shared_ptr<zone::SignedZone> zone)
    : id_(std::move(endpoint_id)), signed_zone_(std::move(zone)) {}

ZoneAuthority::ZoneAuthority(std::string endpoint_id,
                             std::shared_ptr<zone::Zone> zone)
    : id_(std::move(endpoint_id)), plain_zone_(std::move(zone)) {}

void ZoneAuthority::append_rrset(std::vector<dns::ResourceRecord>& section,
                                 const dns::RRset& rrset, bool want_dnssec) {
  for (const dns::ResourceRecord& record : rrset.records()) {
    section.push_back(record);
  }
  if (want_dnssec && signed_zone_) {
    section.push_back(signed_zone_->rrsig_for(rrset));
  }
}

void ZoneAuthority::append_nxdomain_sections(dns::Message& response,
                                             const dns::Name& qname,
                                             bool want_dnssec) {
  const zone::Zone& z = zone_data();
  append_rrset(response.authorities, z.soa_rrset(), want_dnssec);
  if (want_dnssec && signed_zone_) {
    if (signed_zone_->nsec3_enabled()) {
      for (zone::NsecProof& proof : signed_zone_->nsec3_nxdomain_proof(qname)) {
        response.authorities.push_back(std::move(proof.nsec));
        response.authorities.push_back(std::move(proof.rrsig));
      }
    } else {
      zone::NsecProof proof = signed_zone_->nxdomain_proof(qname);
      response.authorities.push_back(std::move(proof.nsec));
      response.authorities.push_back(std::move(proof.rrsig));
    }
  }
}

void ZoneAuthority::append_nodata_proof(dns::Message& response,
                                        const dns::Name& qname) {
  if (signed_zone_->nsec3_enabled()) {
    for (zone::NsecProof& proof : signed_zone_->nsec3_nodata_proof(qname)) {
      response.authorities.push_back(std::move(proof.nsec));
      response.authorities.push_back(std::move(proof.rrsig));
    }
  } else {
    zone::NsecProof proof = signed_zone_->nodata_proof(qname);
    response.authorities.push_back(std::move(proof.nsec));
    response.authorities.push_back(std::move(proof.rrsig));
  }
}

void ZoneAuthority::append_glue(dns::Message& response,
                                const dns::RRset& ns_set, bool want_dnssec) {
  const zone::Zone& z = zone_data();
  for (const dns::ResourceRecord& ns : ns_set.records()) {
    const auto& rdata = std::get<dns::NsRdata>(ns.rdata);
    // Glue only exists for nameserver hosts inside this zone.
    if (const dns::RRset* glue = z.find(rdata.nameserver, dns::RRType::kA)) {
      // Glue is unsigned even in signed zones (it is non-authoritative).
      for (const dns::ResourceRecord& record : glue->records()) {
        response.additionals.push_back(record);
      }
    }
  }
  (void)want_dnssec;
}

dns::Message ZoneAuthority::handle_query(const dns::Message& query) {
  dns::Message response = dns::Message::make_response(query);
  response.header.aa = true;
  response.header.z = z_bit_signal_;
  const dns::Question& question = query.question();
  const bool want_dnssec = query.dnssec_ok;
  const zone::Zone& z = zone_data();

  // Apex DNSKEY is served from the signing state, not the zone store.
  if (question.type == dns::RRType::kDnskey && signed_zone_ &&
      question.name == z.apex()) {
    append_rrset(response.answers, signed_zone_->dnskey_rrset(), want_dnssec);
    trace_outcome(tracer_, id_, question, "answer", response.header.rcode);
    return response;
  }

  const zone::LookupResult result = z.lookup(question.name, question.type);
  switch (result.kind) {
    case zone::LookupKind::kAnswer: {
      append_rrset(response.answers, *result.rrset, want_dnssec);
      trace_outcome(tracer_, id_, question, "answer", response.header.rcode);
      break;
    }
    case zone::LookupKind::kReferral: {
      response.header.aa = false;
      append_rrset(response.authorities, *result.rrset, /*want_dnssec=*/false);
      if (want_dnssec && signed_zone_) {
        if (result.ds != nullptr) {
          append_rrset(response.authorities, *result.ds, want_dnssec);
        } else {
          // Signed parent, unsigned delegation: prove DS absence (this is
          // what makes the child "insecure" rather than "bogus").
          append_nodata_proof(response, result.cut);
        }
      }
      append_glue(response, *result.rrset, want_dnssec);
      trace_outcome(tracer_, id_, question, "referral", response.header.rcode);
      break;
    }
    case zone::LookupKind::kNoData: {
      append_rrset(response.authorities, z.soa_rrset(), want_dnssec);
      if (want_dnssec && signed_zone_) {
        append_nodata_proof(response, question.name);
      }
      trace_outcome(tracer_, id_, question, "nodata", response.header.rcode);
      break;
    }
    case zone::LookupKind::kNxDomain: {
      response.header.rcode = dns::RCode::kNxDomain;
      append_nxdomain_sections(response, question.name, want_dnssec);
      trace_outcome(tracer_, id_, question, "nxdomain", response.header.rcode);
      break;
    }
  }
  return response;
}

}  // namespace lookaside::server
