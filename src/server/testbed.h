// Small-scale DNS testbed: a real root zone, TLD zones and SLD zones wired
// together, replacing the paper's live DNS hierarchy for the secured-domain
// experiments (Section 5.2 / Table 3), tests and examples.
//
// Million-domain workloads use workload::UniverseAuthority instead; this
// builder materializes every zone with real keys and real signatures.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "server/directory.h"
#include "server/zone_authority.h"
#include "zone/keys.h"

namespace lookaside::server {

/// Specification of one second-level domain in the testbed.
struct SldSpec {
  std::string name;          // e.g. "example.com"
  bool dnssec_signed = false;
  bool ds_in_parent = false;  // false + signed == "island of security"
  bool corrupt_signatures = false;  // failure injection -> bogus
  std::vector<std::string> extra_hosts;  // extra A-record labels ("www", ...)
};

/// Testbed-wide options.
struct TestbedOptions {
  std::size_t key_bits = 512;
  std::uint64_t seed = 1;
  std::uint32_t default_ttl = 3600;
  std::uint32_t negative_ttl = 3600;
};

/// Builds and owns the full server-side hierarchy.
class Testbed {
 public:
  Testbed(TestbedOptions options, const std::vector<SldSpec>& slds);

  [[nodiscard]] ServerDirectory& directory() { return directory_; }

  /// The root KSK DNSKEY — what a correctly configured resolver installs as
  /// its trust anchor.
  [[nodiscard]] const dns::DnskeyRdata& root_trust_anchor() const;

  /// The signed SLD zone for `name`, or nullptr when the SLD is unsigned.
  [[nodiscard]] std::shared_ptr<zone::SignedZone> signed_sld(
      const std::string& name) const;

  /// The authority serving `apex_text` ("", "com", "example.com"), or null.
  [[nodiscard]] std::shared_ptr<ZoneAuthority> authority(
      const std::string& apex_text) const;

  /// Adds/updates the paper's TXT-signaling record ("dlv=1"/"dlv=0") at an
  /// SLD apex (remedy §6.2.1).
  void set_txt_dlv_signal(const std::string& sld, bool has_dlv_record);

  /// Sets the Z bit policy marker for an SLD: the authority answers with the
  /// spare Z header bit set when the domain has a DLV record (remedy
  /// §6.2.1 "Using Z Bit"). Stored here; applied by ZBitAuthority wrappers
  /// in core. Returns previous value.
  [[nodiscard]] const std::vector<std::string>& sld_names() const {
    return sld_names_;
  }

 private:
  ServerDirectory directory_;
  std::map<std::string, std::shared_ptr<ZoneAuthority>> authorities_;
  std::map<std::string, std::shared_ptr<zone::SignedZone>> signed_slds_;
  std::vector<std::string> sld_names_;
  dns::DnskeyRdata root_ksk_;
};

}  // namespace lookaside::server
