// An authoritative DNS server answering from one zone, with optional DNSSEC.
//
// Response assembly follows RFC 1034/4035 closely enough for a validating
// recursive resolver: authoritative answers (+RRSIG when DO), referrals at
// zone cuts (+DS or NSEC no-DS proof), NXDOMAIN/NODATA with SOA and NSEC
// denial proofs.
#pragma once

#include <memory>
#include <string>

#include "sim/network.h"
#include "zone/signed_zone.h"

namespace lookaside::obs {
class Tracer;
}

namespace lookaside::server {

/// Serves one zone. When constructed without keys the zone is unsigned and
/// DNSSEC-related sections are simply absent (the "insecure" world most of
/// the paper's leaked domains live in).
class ZoneAuthority : public sim::Endpoint {
 public:
  /// Signed authority.
  ZoneAuthority(std::string endpoint_id, std::shared_ptr<zone::SignedZone> zone);

  /// Unsigned authority.
  ZoneAuthority(std::string endpoint_id, std::shared_ptr<zone::Zone> zone);

  [[nodiscard]] std::string endpoint_id() const override { return id_; }
  [[nodiscard]] dns::Message handle_query(const dns::Message& query) override;

  [[nodiscard]] bool is_signed() const { return signed_zone_ != nullptr; }
  [[nodiscard]] const zone::Zone& zone_data() const {
    return signed_zone_ ? signed_zone_->zone() : *plain_zone_;
  }
  [[nodiscard]] std::shared_ptr<zone::SignedZone> signed_zone() {
    return signed_zone_;
  }
  [[nodiscard]] std::shared_ptr<zone::Zone> plain_zone() { return plain_zone_; }

  /// §6.2.1 "Using Z Bit" remedy: when enabled, authoritative answers carry
  /// the spare Z header bit, signaling "this zone has a DLV record
  /// deposited" to DLV-aware resolvers.
  void set_z_bit_signal(bool enabled) { z_bit_signal_ = enabled; }
  [[nodiscard]] bool z_bit_signal() const { return z_bit_signal_; }

  /// Attaches a structured tracer (nullable). Each handled query emits one
  /// kAuthority event labeled answer / referral / nodata / nxdomain.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  void append_rrset(std::vector<dns::ResourceRecord>& section,
                    const dns::RRset& rrset, bool want_dnssec);
  void append_nxdomain_sections(dns::Message& response,
                                const dns::Name& qname, bool want_dnssec);
  /// NSEC or NSEC3 proof (per zone signing mode) that `qname` exists but the
  /// queried type (or DS at a cut) does not. Requires signed_zone_.
  void append_nodata_proof(dns::Message& response, const dns::Name& qname);
  void append_glue(dns::Message& response, const dns::RRset& ns_set,
                   bool want_dnssec);

  std::string id_;
  std::shared_ptr<zone::SignedZone> signed_zone_;
  std::shared_ptr<zone::Zone> plain_zone_;
  bool z_bit_signal_ = false;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace lookaside::server
