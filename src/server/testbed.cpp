#include "server/testbed.h"

#include <set>
#include <stdexcept>

namespace lookaside::server {

namespace {

dns::SoaRdata make_soa(const dns::Name& apex, std::uint32_t negative_ttl) {
  dns::SoaRdata soa;
  soa.primary_ns = apex.is_root() ? dns::Name::parse("a.root-servers.net")
                                  : apex.with_prefix_label("ns1");
  soa.responsible = apex.is_root() ? dns::Name::parse("nstld.verisign-grs.com")
                                   : apex.with_prefix_label("hostmaster");
  soa.serial = 2026070500;
  soa.refresh = 7200;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum_ttl = negative_ttl;
  return soa;
}

std::uint32_t synth_address(const dns::Name& name) {
  // Deterministic fake IPv4 per name, in 203.0.113.0/24-style doc space.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : name.internal_text()) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return 0xCB007100u | static_cast<std::uint32_t>(hash & 0xFF);
}

dns::AaaaRdata synth_address6(const dns::Name& name) {
  dns::AaaaRdata out;
  out.address[0] = 0x20;
  out.address[1] = 0x01;
  out.address[2] = 0x0d;
  out.address[3] = 0xb8;
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : name.internal_text()) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  for (int i = 0; i < 8; ++i) {
    out.address[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(hash >> (8 * i));
  }
  return out;
}

}  // namespace

Testbed::Testbed(TestbedOptions options, const std::vector<SldSpec>& slds) {
  crypto::SplitMix64 seeder(options.seed);

  // Collect the TLD set.
  std::set<std::string> tld_set;
  for (const SldSpec& spec : slds) {
    const dns::Name name = dns::Name::parse(spec.name);
    if (name.label_count() < 2) {
      throw std::invalid_argument("SLD must have at least two labels: " +
                                  spec.name);
    }
    tld_set.insert(std::string(name.label(name.label_count() - 1)));
  }

  // --- Root zone (always signed; the paper's world post-2010). ---
  zone::Zone root_zone(dns::Name::root(),
                       make_soa(dns::Name::root(), options.negative_ttl),
                       options.default_ttl);
  crypto::SplitMix64 root_rng(crypto::derive_seed(options.seed, 0));
  zone::ZoneKeys root_keys =
      zone::ZoneKeys::generate(options.key_bits, root_rng);
  root_ksk_ = root_keys.ksk_record();

  // --- Build SLD zones first so TLDs can host their DS records. ---
  struct BuiltSld {
    SldSpec spec;
    dns::Name name;
    std::shared_ptr<ZoneAuthority> authority;
    std::shared_ptr<zone::SignedZone> signed_zone;
  };
  std::vector<BuiltSld> built;
  std::uint64_t key_label = 100;
  for (const SldSpec& spec : slds) {
    const dns::Name name = dns::Name::parse(spec.name);
    zone::Zone sld_zone(name, make_soa(name, options.negative_ttl),
                        options.default_ttl);
    const dns::Name ns_host = name.with_prefix_label("ns1");
    sld_zone.add(dns::ResourceRecord::make(name, options.default_ttl,
                                           dns::NsRdata{ns_host}));
    sld_zone.add(dns::ResourceRecord::make(ns_host, options.default_ttl,
                                           dns::ARdata{synth_address(ns_host)}));
    sld_zone.add(dns::ResourceRecord::make(name, options.default_ttl,
                                           dns::ARdata{synth_address(name)}));
    sld_zone.add(dns::ResourceRecord::make(name, options.default_ttl,
                                           synth_address6(name)));
    for (const std::string& host : spec.extra_hosts) {
      const dns::Name host_name = name.with_prefix_label(host);
      sld_zone.add(dns::ResourceRecord::make(
          host_name, options.default_ttl, dns::ARdata{synth_address(host_name)}));
    }

    BuiltSld entry;
    entry.spec = spec;
    entry.name = name;
    if (spec.dnssec_signed) {
      crypto::SplitMix64 rng(crypto::derive_seed(options.seed, ++key_label));
      auto signed_zone = std::make_shared<zone::SignedZone>(
          std::move(sld_zone), zone::ZoneKeys::generate(options.key_bits, rng));
      signed_zone->set_corrupt_signatures(spec.corrupt_signatures);
      entry.signed_zone = signed_zone;
      entry.authority = std::make_shared<ZoneAuthority>(
          "auth:" + spec.name, signed_zone);
      signed_slds_[spec.name] = signed_zone;
    } else {
      entry.authority = std::make_shared<ZoneAuthority>(
          "auth:" + spec.name, std::make_shared<zone::Zone>(std::move(sld_zone)));
    }
    built.push_back(std::move(entry));
    sld_names_.push_back(spec.name);
  }

  // --- TLD zones with delegations (and DS where registered). ---
  std::uint64_t tld_label = 10;
  for (const std::string& tld : tld_set) {
    const dns::Name tld_name = dns::Name::parse(tld);
    zone::Zone tld_zone(tld_name, make_soa(tld_name, options.negative_ttl),
                        options.default_ttl);
    const dns::Name tld_ns = tld_name.with_prefix_label("ns1");
    tld_zone.add(dns::ResourceRecord::make(tld_name, options.default_ttl,
                                           dns::NsRdata{tld_ns}));
    tld_zone.add(dns::ResourceRecord::make(tld_ns, options.default_ttl,
                                           dns::ARdata{synth_address(tld_ns)}));
    for (const BuiltSld& entry : built) {
      if (entry.name.parent() != tld_name) continue;
      const dns::Name ns_host = entry.name.with_prefix_label("ns1");
      tld_zone.add(dns::ResourceRecord::make(entry.name, options.default_ttl,
                                             dns::NsRdata{ns_host}));
      tld_zone.add(dns::ResourceRecord::make(
          ns_host, options.default_ttl, dns::ARdata{synth_address(ns_host)}));
      if (entry.spec.dnssec_signed && entry.spec.ds_in_parent) {
        tld_zone.add(dns::ResourceRecord::make(
            entry.name, options.default_ttl,
            dns::Rdata{entry.signed_zone->ds_for_parent()}));
      }
    }

    crypto::SplitMix64 rng(crypto::derive_seed(options.seed, ++tld_label));
    auto signed_tld = std::make_shared<zone::SignedZone>(
        std::move(tld_zone), zone::ZoneKeys::generate(options.key_bits, rng));

    // Root delegation + DS for the (signed) TLD.
    const dns::Name root_ns_host = tld_name.with_prefix_label("ns1");
    root_zone.add(dns::ResourceRecord::make(tld_name, options.default_ttl,
                                            dns::NsRdata{root_ns_host}));
    root_zone.add(dns::ResourceRecord::make(
        root_ns_host, options.default_ttl, dns::ARdata{synth_address(root_ns_host)}));
    root_zone.add(dns::ResourceRecord::make(
        tld_name, options.default_ttl, dns::Rdata{signed_tld->ds_for_parent()}));

    auto authority = std::make_shared<ZoneAuthority>("tld:" + tld, signed_tld);
    authorities_[tld] = authority;
    directory_.register_zone(tld_name, authority);
  }

  auto signed_root = std::make_shared<zone::SignedZone>(std::move(root_zone),
                                                        std::move(root_keys));
  auto root_authority = std::make_shared<ZoneAuthority>("root", signed_root);
  authorities_[""] = root_authority;
  directory_.register_zone(dns::Name::root(), root_authority);

  for (BuiltSld& entry : built) {
    authorities_[entry.spec.name] = entry.authority;
    directory_.register_zone(entry.name, entry.authority);
  }
}

const dns::DnskeyRdata& Testbed::root_trust_anchor() const {
  return root_ksk_;
}

std::shared_ptr<zone::SignedZone> Testbed::signed_sld(
    const std::string& name) const {
  const auto it = signed_slds_.find(name);
  return it == signed_slds_.end() ? nullptr : it->second;
}

std::shared_ptr<ZoneAuthority> Testbed::authority(
    const std::string& apex_text) const {
  const auto it = authorities_.find(apex_text);
  return it == authorities_.end() ? nullptr : it->second;
}

void Testbed::set_txt_dlv_signal(const std::string& sld, bool has_dlv_record) {
  const auto it = authorities_.find(sld);
  if (it == authorities_.end()) {
    throw std::invalid_argument("unknown SLD: " + sld);
  }
  const dns::Name name = dns::Name::parse(sld);
  dns::TxtRdata txt{{has_dlv_record ? "dlv=1" : "dlv=0"}};
  if (auto signed_zone = it->second->signed_zone()) {
    signed_zone->zone().add(
        dns::ResourceRecord::make(name, 3600, std::move(txt)));
    signed_zone->invalidate_signature_cache();
  } else {
    it->second->plain_zone()->add(
        dns::ResourceRecord::make(name, 3600, std::move(txt)));
  }
}

}  // namespace lookaside::server
