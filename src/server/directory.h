// Server directory: maps zone apexes to the endpoints serving them.
//
// This abstracts IP addressing: a real resolver learns nameserver *hosts*
// from referrals and resolves them to addresses; here the referral records
// still flow on the wire (and missing glue still costs visible A/AAAA
// lookups, accounted by the resolver), but the final "connect to the server
// for zone X" step is a directory lookup.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "dns/name.h"
#include "sim/network.h"

namespace lookaside::server {

/// Registry of authoritative endpoints by zone apex. A zone may have
/// several endpoints (a primary plus failover replicas, like a real NS
/// set); single-endpoint callers always get the primary.
class ServerDirectory {
 public:
  /// Registers `endpoint` as authoritative for `apex` (replacing any
  /// previous registration, including replicas).
  void register_zone(const dns::Name& apex,
                     std::shared_ptr<sim::Endpoint> endpoint);

  /// Appends a failover replica for `apex` (kept after the primary in
  /// consultation order). The apex must already be registered.
  void add_zone_replica(const dns::Name& apex,
                        std::shared_ptr<sim::Endpoint> endpoint);

  /// Primary endpoint for exactly `apex`, or nullptr. When a fallback is
  /// installed it is consulted for apexes with no explicit registration
  /// (this is how the synthetic million-domain universe serves SLD zones
  /// without materializing a million registrations).
  [[nodiscard]] sim::Endpoint* authority_for_zone(const dns::Name& apex) const;

  /// Every endpoint serving `apex` in consultation order (primary first,
  /// then replicas); falls back to the fallback hook's single endpoint.
  /// Empty when the apex is unknown.
  [[nodiscard]] std::vector<sim::Endpoint*> authorities_for_zone(
      const dns::Name& apex) const;

  /// Installs the fallback hook; it may return nullptr to decline.
  void set_fallback(std::function<sim::Endpoint*(const dns::Name&)> fallback) {
    fallback_ = std::move(fallback);
  }

  /// Endpoint serving the deepest registered zone enclosing `qname`
  /// (at most `max_labels` labels deep); the root must be registered.
  /// Outputs the matched apex through `matched_apex` when non-null.
  [[nodiscard]] sim::Endpoint* deepest_authority(
      const dns::Name& qname, dns::Name* matched_apex = nullptr) const;

  [[nodiscard]] std::size_t zone_count() const { return zones_.size(); }

 private:
  struct CanonicalLess {
    bool operator()(const dns::Name& a, const dns::Name& b) const {
      return a.canonical_compare(b) < 0;
    }
  };
  std::map<dns::Name, std::vector<std::shared_ptr<sim::Endpoint>>,
           CanonicalLess>
      zones_;
  std::function<sim::Endpoint*(const dns::Name&)> fallback_;
};

}  // namespace lookaside::server
