#include "server/directory.h"

namespace lookaside::server {

void ServerDirectory::register_zone(const dns::Name& apex,
                                    std::shared_ptr<sim::Endpoint> endpoint) {
  zones_[apex] = std::move(endpoint);
}

sim::Endpoint* ServerDirectory::authority_for_zone(
    const dns::Name& apex) const {
  const auto it = zones_.find(apex);
  if (it != zones_.end()) return it->second.get();
  return fallback_ ? fallback_(apex) : nullptr;
}

sim::Endpoint* ServerDirectory::deepest_authority(
    const dns::Name& qname, dns::Name* matched_apex) const {
  // Walk suffixes of qname from deepest to the root.
  dns::Name candidate = qname;
  for (;;) {
    const auto it = zones_.find(candidate);
    if (it != zones_.end()) {
      if (matched_apex != nullptr) *matched_apex = candidate;
      return it->second.get();
    }
    if (candidate.is_root()) return nullptr;
    candidate = candidate.parent();
  }
}

}  // namespace lookaside::server
