#include "server/directory.h"

namespace lookaside::server {

void ServerDirectory::register_zone(const dns::Name& apex,
                                    std::shared_ptr<sim::Endpoint> endpoint) {
  zones_[apex] = {std::move(endpoint)};
}

void ServerDirectory::add_zone_replica(const dns::Name& apex,
                                       std::shared_ptr<sim::Endpoint> endpoint) {
  const auto it = zones_.find(apex);
  if (it == zones_.end()) return;  // replicas require a registered primary
  it->second.push_back(std::move(endpoint));
}

sim::Endpoint* ServerDirectory::authority_for_zone(
    const dns::Name& apex) const {
  const auto it = zones_.find(apex);
  if (it != zones_.end() && !it->second.empty()) return it->second.front().get();
  return fallback_ ? fallback_(apex) : nullptr;
}

std::vector<sim::Endpoint*> ServerDirectory::authorities_for_zone(
    const dns::Name& apex) const {
  std::vector<sim::Endpoint*> out;
  const auto it = zones_.find(apex);
  if (it != zones_.end()) {
    out.reserve(it->second.size());
    for (const auto& endpoint : it->second) out.push_back(endpoint.get());
    return out;
  }
  if (fallback_) {
    sim::Endpoint* endpoint = fallback_(apex);
    if (endpoint != nullptr) out.push_back(endpoint);
  }
  return out;
}

sim::Endpoint* ServerDirectory::deepest_authority(
    const dns::Name& qname, dns::Name* matched_apex) const {
  // Walk suffixes of qname from deepest to the root.
  dns::Name candidate = qname;
  for (;;) {
    const auto it = zones_.find(candidate);
    if (it != zones_.end() && !it->second.empty()) {
      if (matched_apex != nullptr) *matched_apex = candidate;
      return it->second.front().get();
    }
    if (candidate.is_root()) return nullptr;
    candidate = candidate.parent();
  }
}

}  // namespace lookaside::server
