// The 45 DNSSEC-secured domains dataset (paper §4.2, after Huque's list).
//
// The original list is gone with its source; what the paper's §5.2 uses is
// its *structure*: 45 domains that are all signed, of which 5 could not be
// validated on-path ("islands of security" — signed but no DS in the parent
// zone) and 40 have complete chains of trust. This module reproduces that
// structure deterministically.
#pragma once

#include <vector>

#include "server/testbed.h"

namespace lookaside::workload {

/// Number of domains in the dataset and how many are islands.
inline constexpr std::size_t kSecuredDomainCount = 45;
inline constexpr std::size_t kSecuredIslandCount = 5;

/// Builds the 45 SLD specifications: 40 signed-and-chained, 5 islands.
[[nodiscard]] std::vector<server::SldSpec> secured_45_specs();

/// The subset of names that are islands (candidates for DLV deposit).
[[nodiscard]] std::vector<std::string> secured_45_island_names();

}  // namespace lookaside::workload
