#include "workload/ditl.h"

#include <cmath>

#include "crypto/rng.h"

namespace lookaside::workload {

std::vector<std::uint64_t> ditl_per_minute_rates(const DitlOptions& options) {
  crypto::SplitMix64 rng(options.seed);
  // Center the series on the average rate the target total implies, so
  // normalization barely perturbs the envelope.
  const double mid = static_cast<double>(options.total_queries) /
                     static_cast<double>(options.minutes);
  const double swing =
      std::min(mid - static_cast<double>(options.min_rate),
               static_cast<double>(options.max_rate) - mid);

  std::vector<double> shape(options.minutes);
  double shape_total = 0;
  for (std::uint32_t minute = 0; minute < options.minutes; ++minute) {
    const double phase =
        2.0 * 3.14159265358979 * static_cast<double>(minute) /
        static_cast<double>(options.minutes);
    // Slow swell + secondary ripple + bounded noise.
    double value = mid + swing * (0.55 * std::sin(phase - 1.2) +
                                  0.25 * std::sin(3.1 * phase) +
                                  0.20 * (rng.next_double() * 2.0 - 1.0));
    value = std::min(static_cast<double>(options.max_rate),
                     std::max(static_cast<double>(options.min_rate), value));
    shape[minute] = value;
    shape_total += value;
  }

  // Normalize to the exact target total.
  std::vector<std::uint64_t> out(options.minutes);
  std::uint64_t emitted = 0;
  for (std::uint32_t minute = 0; minute < options.minutes; ++minute) {
    const double scaled = shape[minute] *
                          static_cast<double>(options.total_queries) /
                          shape_total;
    out[minute] = static_cast<std::uint64_t>(scaled);
    emitted += out[minute];
  }
  // Fold the rounding remainder into the last minute.
  out.back() += options.total_queries - emitted;
  return out;
}

}  // namespace lookaside::workload
