#include "workload/universe.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "crypto/rng.h"

namespace lookaside::workload {

namespace {

// Approximate Alexa TLD mix (share of ranked sites).
struct TldShare {
  const char* tld;
  double share;
};
constexpr TldShare kTldMix[] = {
    {"com", 0.52}, {"net", 0.13}, {"org", 0.10}, {"ru", 0.05},
    {"de", 0.04},  {"jp", 0.03},  {"uk", 0.03},  {"br", 0.02},
    {"info", 0.02}, {"fr", 0.015}, {"it", 0.015}, {"nl", 0.01},
    {"pl", 0.01},  {"in", 0.01},  {"cn", 0.01},  {"edu", 0.01},
};

// DLV adoption skew across TLDs: per-TLD (top-rank rate, tail rate).
//
// The tail deposit density varies by orders of magnitude between TLDs,
// which is what makes Fig. 9's decay log-linear: a DLV-zone region with
// almost no deposits is covered by a handful of NSEC ranges (its queries
// aggregate after the first few hit the cache), while a dense region keeps
// producing fresh ranges until N is large. The suppression crossover for a
// TLD sits near share_tld * N ~ gap count, so spreading gap counts across
// decades spreads crossovers across decades of N.
struct DepositRates {
  double top;
  double tail;
};
DepositRates tld_deposit_rates(const std::string& tld) {
  if (tld == "com") return {0.14, 0.10};          // dense: suppresses last
  if (tld == "net" || tld == "org") return {0.10, 0.010};
  if (tld == "de") return {0.010, 0.0008};
  if (tld == "ru") return {0.008, 0.0004};
  return {0.002, 0.00005};  // minor TLDs: a few ranges cover everything early
}

std::string base36(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
  if (value == 0) return "0";
  std::string out;
  while (value != 0) {
    out.push_back(kDigits[value % 36]);
    value /= 36;
  }
  return {out.rbegin(), out.rend()};
}

std::optional<std::uint64_t> parse_base36(std::string_view text) {
  std::uint64_t value = 0;
  if (text.empty()) return std::nullopt;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'z') digit = c - 'a' + 10;
    else return std::nullopt;
    value = value * 36 + static_cast<std::uint64_t>(digit);
  }
  return value;
}

constexpr std::string_view kDomainPrefix = "site-";
constexpr std::string_view kProviderPrefix = "hostprov";

}  // namespace

Universe::Universe(UniverseOptions options) : options_(options) {
  double cumulative = 0;
  for (const TldShare& entry : kTldMix) {
    tlds_.emplace_back(entry.tld);
    cumulative += entry.share;
    tld_cumulative_.push_back(cumulative);
  }
  // Normalize the last bucket to 1.0 so every rank lands somewhere.
  tld_cumulative_.back() = 1.0;
}

std::uint64_t Universe::mix(std::uint64_t rank, std::uint64_t salt) const {
  return crypto::derive_seed(options_.seed ^ (salt * 0x9e3779b97f4a7c15ULL),
                             rank);
}

double Universe::unit(std::uint64_t rank, std::uint64_t salt) const {
  return static_cast<double>(mix(rank, salt) >> 11) * 0x1.0p-53;
}

const std::string& Universe::tld_for(std::uint64_t rank) const {
  const double u = unit(rank, 1);
  for (std::size_t i = 0; i < tld_cumulative_.size(); ++i) {
    if (u < tld_cumulative_[i]) return tlds_[i];
  }
  return tlds_.back();
}

dns::Name Universe::domain_at(std::uint64_t rank) const {
  if (rank == 0 || rank > options_.size) {
    throw std::invalid_argument("rank outside universe");
  }
  // Label: "site-<rank36>-<2 hash chars>" — rank recoverable, names vary.
  const std::uint64_t h = mix(rank, 2);
  std::string label(kDomainPrefix);
  label += base36(rank);
  label += '-';
  label += static_cast<char>('a' + h % 26);
  label += static_cast<char>('a' + (h / 26) % 26);
  return dns::Name::parse(label + "." + tld_for(rank));
}

std::optional<std::uint64_t> Universe::rank_of(const dns::Name& name) const {
  if (name.label_count() < 2) return std::nullopt;
  // The SLD label is the second-from-last.
  const std::string_view label = name.label(name.label_count() - 2);
  if (label.substr(0, kDomainPrefix.size()) != kDomainPrefix) {
    return std::nullopt;
  }
  const std::string_view tail = label.substr(kDomainPrefix.size());
  const std::size_t dash = tail.rfind('-');
  if (dash == std::string_view::npos) return std::nullopt;
  const auto rank = parse_base36(tail.substr(0, dash));
  if (!rank.has_value() || *rank == 0 || *rank > options_.size) {
    return std::nullopt;
  }
  // Verify the checksum characters and TLD so foreign names are rejected.
  if (domain_at(*rank).internal_text() !=
      std::string(label) + "." +
          std::string(name.label(name.label_count() - 1))) {
    return std::nullopt;
  }
  return rank;
}

double Universe::deposit_probability(std::uint64_t rank,
                                     const std::string& tld) const {
  const DepositRates rates = tld_deposit_rates(tld);
  const double top = rates.top * options_.deposit_top_scale;
  const double tail = rates.tail * options_.deposit_tail_scale;
  const std::uint64_t top_band =
      std::min(options_.deposit_top_band, options_.size);
  const std::uint64_t tail_band =
      std::max(options_.deposit_tail_band, top_band + 1);
  double p;
  if (rank <= top_band) {
    p = top;
  } else if (rank >= tail_band) {
    p = tail;
  } else {
    // Log-space interpolation between the bands.
    const double t = (std::log10(static_cast<double>(rank)) -
                      std::log10(static_cast<double>(top_band))) /
                     (std::log10(static_cast<double>(tail_band)) -
                      std::log10(static_cast<double>(top_band)));
    p = top + t * (tail - top);
  }
  return std::clamp(p, 0.0, 1.0);
}

DomainInfo Universe::info(std::uint64_t rank) const {
  DomainInfo out;
  out.rank = rank;
  out.name = domain_at(rank);
  out.tld = tld_for(rank);

  const double roll = unit(rank, 3);
  const double p_chain = options_.chain_secure_probability;
  const double p_deposit = deposit_probability(rank, out.tld);
  const double p_orphan = options_.orphan_island_probability;
  if (roll < p_chain) {
    out.dnssec_signed = true;
    out.ds_in_parent = true;
  } else if (roll < p_chain + p_deposit) {
    out.dnssec_signed = true;
    out.dlv_deposited = true;  // island with a DLV record
  } else if (roll < p_chain + p_deposit + p_orphan) {
    out.dnssec_signed = true;  // orphan island
  }

  out.glue = unit(rank, 4) < options_.glue_probability;
  out.provider = mix(rank, 5) % std::max<std::uint64_t>(1, options_.provider_count);
  return out;
}

std::optional<DomainInfo> Universe::info_by_name(const dns::Name& name) const {
  const auto rank = rank_of(name);
  if (!rank.has_value()) return std::nullopt;
  return info(*rank);
}

dns::Name Universe::provider_ns_host(std::uint64_t provider) const {
  return dns::Name::parse("ns1." + std::string(kProviderPrefix) +
                          base36(provider) + ".net");
}

std::optional<std::uint64_t> Universe::provider_of(
    const dns::Name& name) const {
  if (name.label_count() < 2) return std::nullopt;
  const std::string_view label = name.label(name.label_count() - 2);
  if (label.substr(0, kProviderPrefix.size()) != kProviderPrefix) {
    return std::nullopt;
  }
  if (name.label(name.label_count() - 1) != "net") return std::nullopt;
  const auto provider = parse_base36(label.substr(kProviderPrefix.size()));
  if (!provider.has_value() || *provider >= options_.provider_count) {
    return std::nullopt;
  }
  return provider;
}

}  // namespace lookaside::workload
