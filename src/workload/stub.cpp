#include "workload/stub.h"

namespace lookaside::workload {

namespace {

double hash_unit(const dns::Name& name) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : name.internal_text()) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

dns::Name reverse_name(std::uint32_t address) {
  return dns::Name::parse(std::to_string(address & 0xFF) + "." +
                          std::to_string((address >> 8) & 0xFF) + "." +
                          std::to_string((address >> 16) & 0xFF) + "." +
                          std::to_string(address >> 24) + ".in-addr.arpa");
}

}  // namespace

StubClient::StubClient(sim::Network& network,
                       resolver::RecursiveResolver& resolver,
                       StubOptions options)
    : network_(&network), resolver_(&resolver), options_(options) {}

dns::Message StubClient::ask(const dns::Name& name, dns::RRType type) {
  const dns::Message query = dns::Message::make_query(
      next_id_++, name, type, /*recursion_desired=*/true, options_.dnssec_ok);
  ++queries_sent_;
  const auto response = network_->exchange("stub", *resolver_, query);
  return response.value_or(dns::Message{});
}

VisitOutcome StubClient::visit(const dns::Name& domain) {
  VisitOutcome outcome;
  const dns::Message a_response = ask(domain, dns::RRType::kA);
  outcome.rcode = a_response.header.rcode;
  const dns::ResourceRecord* a = a_response.first_answer(dns::RRType::kA);
  outcome.got_address = a != nullptr;

  if (options_.query_aaaa) {
    (void)ask(domain, dns::RRType::kAaaa);
  }
  if (a != nullptr && hash_unit(domain) < options_.ptr_probability) {
    const auto& rdata = std::get<dns::ARdata>(a->rdata);
    (void)ask(reverse_name(rdata.address), dns::RRType::kPtr);
  }
  return outcome;
}

}  // namespace lookaside::workload
