#include "workload/client_mix.h"

#include <algorithm>
#include <cmath>

#include "crypto/rng.h"

namespace lookaside::workload {

namespace {

/// Zipf(1)-like rank draw via the continuous inverse CDF: with u uniform in
/// [0,1), floor(support^u) has mass ~ 1/rank over [1, support]. Integer
/// clamping keeps the draw in range for every u.
std::uint64_t zipf_rank(crypto::SplitMix64& rng, std::uint64_t support) {
  if (support <= 1) return 1;
  const double u = rng.next_double();
  const auto rank = static_cast<std::uint64_t>(
      std::pow(static_cast<double>(support), u));
  return std::clamp<std::uint64_t>(rank, 1, support);
}

}  // namespace

std::uint32_t ClientMix::first_attacker() const {
  const auto attackers = static_cast<std::uint32_t>(
      static_cast<double>(options_.clients) *
      std::clamp(options_.attack_fraction, 0.0, 1.0));
  return options_.clients - attackers;
}

std::vector<ClientQuery> ClientMix::generate(const Universe& universe) const {
  const std::uint64_t support =
      std::min<std::uint64_t>(std::max<std::uint64_t>(options_.zipf_support, 1),
                              universe.size());
  std::vector<ClientQuery> schedule;
  schedule.reserve(static_cast<std::size_t>(options_.clients) *
                   options_.queries_per_client * 2);

  const std::uint32_t attack_start = first_attacker();
  for (std::uint32_t client = 0; client < options_.clients; ++client) {
    crypto::SplitMix64 rng(crypto::derive_seed(options_.seed, client));
    const bool attacker = client >= attack_start;
    std::uint64_t now_us = 0;
    std::uint32_t seq = 0;
    for (std::uint32_t i = 0; i < options_.queries_per_client; ++i) {
      // Integer gaps only: float arithmetic in the timeline would make the
      // schedule (and hence every downstream artifact) platform-sensitive.
      now_us += 1 + rng.next_below(2 * std::max<std::uint64_t>(
                                           options_.mean_gap_us, 1));
      // Attackers cache-bust: a uniform draw over the whole universe almost
      // never repeats, so every query forces a fresh denial validation.
      const std::uint64_t rank = attacker
                                     ? 1 + rng.next_below(universe.size())
                                     : zipf_rank(rng, support);
      const dns::Name name = universe.domain_at(rank);
      schedule.push_back({now_us, client, seq++, name, dns::RRType::kA});
      if (rng.next_double() < options_.aaaa_probability) {
        // The AAAA rides 1us behind its A, like a dual-stack stub's pair.
        schedule.push_back({now_us + 1, client, seq++, name, dns::RRType::kAaaa});
      }
    }
  }

  std::sort(schedule.begin(), schedule.end(),
            [](const ClientQuery& a, const ClientQuery& b) {
              if (a.time_us != b.time_us) return a.time_us < b.time_us;
              if (a.client != b.client) return a.client < b.client;
              return a.seq < b.seq;
            });
  return schedule;
}

}  // namespace lookaside::workload
