// Server-side assembly of the synthetic universe: a real signed root zone,
// one synthetic authority per TLD, a single shared authority impersonating
// every SLD server, a reverse-lookup authority, and a DLV registry populated
// from the universe's deposit model.
//
// Synthetic authorities answer byte-accurate, correctly signed messages
// without materializing a million Zone objects; signatures are computed
// lazily and cached (see zone::SignedZone for the same idea on real zones).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "dlv/registry.h"
#include "server/directory.h"
#include "server/zone_authority.h"
#include "workload/universe.h"
#include "zone/keys.h"

namespace lookaside::obs {
class Tracer;
}

namespace lookaside::workload {

/// Signs synthetic RRsets with one zone's keys, caching by (owner, type).
class SyntheticSigner {
 public:
  SyntheticSigner(dns::Name zone_apex, zone::ZoneKeys keys);

  /// RRSIG over `rrset`; `with_ksk` selects the KSK (DNSKEY sets only).
  [[nodiscard]] dns::ResourceRecord sign(const dns::RRset& rrset,
                                         bool with_ksk = false);

  [[nodiscard]] const zone::ZoneKeys& keys() const { return keys_; }
  [[nodiscard]] const dns::Name& apex() const { return apex_; }

  /// The apex DNSKEY RRset (ZSK + KSK) with standard TTL.
  [[nodiscard]] dns::RRset dnskey_rrset() const;

 private:
  dns::Name apex_;
  zone::ZoneKeys keys_;
  std::map<std::pair<std::string, dns::RRType>, dns::Bytes> cache_;
};

/// World-level options.
struct WorldOptions {
  UniverseOptions universe;
  std::uint64_t seed = 7;
  std::size_t key_bits = 256;    // fast-simulation default (DESIGN.md)
  std::size_t key_pool_size = 8; // shared SLD key pool
  std::uint32_t record_ttl = 3600;
  std::uint32_t negative_ttl = 3600;
  bool txt_signaling = false;    // §6.2.1 TXT remedy served by SLDs
  bool z_bit_signaling = false;  // §6.2.1 Z-bit remedy
  dlv::DlvRegistry::Options dlv;
  /// Deposit scan cap: only ranks <= this are registered in the DLV zone
  /// (use the universe size for full-fidelity runs).
  std::uint64_t deposit_scan_limit = 0;  // 0 => universe size
};

/// Owns every server-side object of a universe experiment.
class UniverseWorld {
 public:
  explicit UniverseWorld(WorldOptions options);

  [[nodiscard]] server::ServerDirectory& directory() { return directory_; }
  [[nodiscard]] dlv::DlvRegistry& registry() { return *registry_; }
  [[nodiscard]] const Universe& universe() const { return universe_; }
  [[nodiscard]] const dns::DnskeyRdata& root_trust_anchor() const {
    return root_anchor_;
  }
  [[nodiscard]] const WorldOptions& options() const { return options_; }

  /// Key pool shared by synthetic SLD zones (exposed for tests).
  [[nodiscard]] const zone::KeyPool& sld_keys() const { return *sld_keys_; }

  /// Threads a tracer (nullable) into the world's instrumented servers:
  /// the DLV registry (Case-1/Case-2 observations) and the root authority
  /// (outcome counts). Synthetic TLD/SLD authorities stay uninstrumented —
  /// their traffic is captured at the network layer.
  void set_tracer(obs::Tracer* tracer) {
    registry_->set_tracer(tracer);
    root_authority_->set_tracer(tracer);
  }

 private:
  WorldOptions options_;
  Universe universe_;
  std::unique_ptr<zone::KeyPool> sld_keys_;
  server::ServerDirectory directory_;
  std::unique_ptr<dlv::DlvRegistry> registry_;
  std::shared_ptr<server::ZoneAuthority> root_authority_;
  dns::DnskeyRdata root_anchor_;
  std::vector<std::shared_ptr<sim::Endpoint>> tld_authorities_;
  std::shared_ptr<sim::Endpoint> sld_authority_;
  std::shared_ptr<sim::Endpoint> ptr_authority_;
};

}  // namespace lookaside::workload
