// Multi-client workload generator for the serving frontend.
//
// Models N stub clients sharing one recursive resolver — the aggregation
// regime of the paper's §6.4 DITL-style estimate. Each client draws domains
// from the *same* Zipf-like popularity law over universe ranks (1/rank
// mass), so the popular head overlaps across clients and identical
// concurrent queries exist for the frontend to coalesce. Interarrival gaps
// and the A/AAAA mix are drawn from per-client SplitMix64 streams derived
// from (seed, client), so a schedule is a pure function of its options.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/name.h"
#include "dns/rr_type.h"
#include "workload/universe.h"

namespace lookaside::workload {

/// One stub query in a multi-client schedule (arrival time is when the
/// query reaches the frontend, in virtual microseconds).
struct ClientQuery {
  std::uint64_t time_us = 0;
  std::uint32_t client = 0;
  std::uint32_t seq = 0;  // per-client sequence number (deterministic tie-break)
  dns::Name name;
  dns::RRType type = dns::RRType::kA;
};

/// Workload shape knobs.
struct ClientMixOptions {
  std::uint32_t clients = 16;
  std::uint32_t queries_per_client = 64;
  std::uint64_t seed = 99;

  /// Ranks are sampled from [1, zipf_support] with mass ~ 1/rank (the
  /// continuous inverse-CDF rank = floor(support^u)), clamped to the
  /// universe size. Popular ranks repeat across clients by construction.
  std::uint64_t zipf_support = 10'000;

  /// Mean per-client interarrival gap (uniform on [1, 2*mean]); resolution
  /// latencies are tens of milliseconds, so gaps well below that produce
  /// concurrent identical queries.
  std::uint64_t mean_gap_us = 2'000;

  /// Probability a visit also asks AAAA for the same name (paper Table 4's
  /// per-type mix, reduced to the serve-relevant part).
  double aaaa_probability = 0.25;

  /// Fraction of clients (the highest-numbered ids) running the
  /// proof-of-nonexistence CPU-exhaustion attack: instead of the shared
  /// Zipf head they draw uniform ranks over the whole universe, so nearly
  /// every query is a cold cache miss whose DLV denial bills the validator
  /// a full iterated NSEC3 hash chain. The names exist in the universe —
  /// the attack rides the ordinary insecure-answer DLV path, not NXDOMAIN.
  /// 0 disables the attack.
  double attack_fraction = 0.0;
};

/// Deterministic multi-client schedule generator.
class ClientMix {
 public:
  explicit ClientMix(ClientMixOptions options) : options_(options) {}

  [[nodiscard]] const ClientMixOptions& options() const { return options_; }

  /// First client id that is an attacker under attack_fraction; equals
  /// `clients` when the attack is disabled. Clients below this id are the
  /// benign population whose latency the defenses must protect.
  [[nodiscard]] std::uint32_t first_attacker() const;

  /// Builds the merged, arrival-ordered schedule over `universe` names.
  /// Ties on time break by (client, seq), so the order is total and
  /// independent of anything but the options.
  [[nodiscard]] std::vector<ClientQuery> generate(
      const Universe& universe) const;

 private:
  ClientMixOptions options_;
};

}  // namespace lookaside::workload
