// Stub-resolver client driving browsing-shaped query streams at the
// recursive resolver (paper §4.1's query-initiation hosts).
//
// For each "visited" domain the stub asks A and (usually) AAAA, and with a
// small probability issues a PTR lookup for the address it got back — the
// mix behind Table 4's per-type query counts.
#pragma once

#include <cstdint>
#include <vector>

#include "resolver/resolver.h"
#include "sim/network.h"

namespace lookaside::workload {

/// Stub behavior knobs.
struct StubOptions {
  bool query_aaaa = true;
  double ptr_probability = 0.02;  // Table 4: PTR ~2 per 100 domains
  bool dnssec_ok = false;         // plain stub by default
};

/// Per-visit outcome summary.
struct VisitOutcome {
  dns::RCode rcode = dns::RCode::kNoError;
  bool got_address = false;
};

/// A stub resolver wired to one recursive resolver over the simulated
/// network (so the stub<->recursive hop is accounted too).
class StubClient {
 public:
  StubClient(sim::Network& network, resolver::RecursiveResolver& resolver,
             StubOptions options = {});

  /// Simulates visiting `domain`: A (+AAAA, + occasional PTR).
  VisitOutcome visit(const dns::Name& domain);

  /// Number of queries this stub has issued.
  [[nodiscard]] std::uint64_t queries_sent() const { return queries_sent_; }

 private:
  [[nodiscard]] dns::Message ask(const dns::Name& name, dns::RRType type);

  sim::Network* network_;
  resolver::RecursiveResolver* resolver_;
  StubOptions options_;
  std::uint16_t next_id_ = 1;
  std::uint64_t queries_sent_ = 0;
};

}  // namespace lookaside::workload
