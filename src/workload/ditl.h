// DITL-like recursive-resolver trace generator (paper §6.2.3, Fig. 12).
//
// The paper used a 7-hour Day-In-The-Life capture at a large recursive:
// 160k-360k queries/minute, 92,705,013 queries total. That capture is not
// redistributable, so this generator synthesizes a per-minute rate series
// with the same envelope: a diurnal-ish slow swell plus deterministic noise,
// normalized to the target total.
#pragma once

#include <cstdint>
#include <vector>

namespace lookaside::workload {

/// Trace-generation knobs; defaults match the paper's capture.
struct DitlOptions {
  std::uint64_t seed = 2015;
  std::uint32_t minutes = 420;               // 7 hours
  std::uint64_t min_rate = 160'000;          // queries per minute
  std::uint64_t max_rate = 360'000;
  std::uint64_t total_queries = 92'705'013;  // normalization target
};

/// Per-minute query counts; sums exactly to `total_queries` and every value
/// stays within [min_rate, max_rate] (up to the final rounding adjustment).
[[nodiscard]] std::vector<std::uint64_t> ditl_per_minute_rates(
    const DitlOptions& options);

}  // namespace lookaside::workload
