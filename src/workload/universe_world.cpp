#include "workload/universe_world.h"

#include <stdexcept>

#include "crypto/dnssec_algo.h"

namespace lookaside::workload {

namespace {

dns::SoaRdata synthetic_soa(const dns::Name& apex, std::uint32_t negative_ttl) {
  dns::SoaRdata soa;
  soa.primary_ns = apex.is_root() ? dns::Name::parse("a.root-servers.net")
                                  : apex.with_prefix_label("ns1");
  soa.responsible = apex.is_root() ? dns::Name::parse("nstld.verisign-grs.com")
                                   : apex.with_prefix_label("hostmaster");
  soa.serial = 2026070501;
  soa.refresh = 7200;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum_ttl = negative_ttl;
  return soa;
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint32_t synthetic_v4(const dns::Name& name) {
  return 0xCB007100u | static_cast<std::uint32_t>(fnv1a(name.internal_text()) & 0xFF);
}

dns::AaaaRdata synthetic_v6(const dns::Name& name) {
  dns::AaaaRdata out;
  out.address = {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  const std::uint64_t hash = fnv1a(name.internal_text());
  for (int i = 0; i < 8; ++i) {
    out.address[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(hash >> (8 * i));
  }
  return out;
}

/// A label that sorts canonically just before `label` (for synthetic NSEC
/// owners) — drop the last character, or "0" for single-character labels.
std::string label_before(std::string_view label) {
  if (label.size() <= 1) return "0";
  return std::string(label.substr(0, label.size() - 1));
}

}  // namespace

// ---------------------------------------------------------------------------
// SyntheticSigner
// ---------------------------------------------------------------------------

SyntheticSigner::SyntheticSigner(dns::Name zone_apex, zone::ZoneKeys keys)
    : apex_(std::move(zone_apex)), keys_(std::move(keys)) {}

dns::RRset SyntheticSigner::dnskey_rrset() const {
  dns::RRset out(apex_, dns::RRType::kDnskey);
  out.add(dns::ResourceRecord::make(apex_, 3600, dns::Rdata{keys_.zsk_record()}));
  out.add(dns::ResourceRecord::make(apex_, 3600, dns::Rdata{keys_.ksk_record()}));
  return out;
}

dns::ResourceRecord SyntheticSigner::sign(const dns::RRset& rrset,
                                          bool with_ksk) {
  dns::RrsigRdata rrsig;
  rrsig.type_covered = rrset.type();
  rrsig.algorithm = 8;
  rrsig.labels = static_cast<std::uint8_t>(rrset.name().label_count());
  rrsig.original_ttl = rrset.ttl();
  rrsig.expiration = 0x7FFFFFFF;
  rrsig.inception = 0;
  rrsig.key_tag = with_ksk ? keys_.ksk_tag() : keys_.zsk_tag();
  rrsig.signer = apex_;

  const auto key = std::make_pair(rrset.name().internal_text(), rrset.type());
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    rrsig.signature = it->second;
  } else {
    const dns::Bytes data = dns::rrsig_signed_data(rrsig, rrset);
    const crypto::RsaPrivateKey& signer =
        with_ksk ? keys_.ksk_private() : keys_.zsk_private();
    rrsig.signature = crypto::sign_message(signer, data);
    cache_.emplace(key, rrsig.signature);
  }
  return dns::ResourceRecord::make(rrset.name(), rrset.ttl(), dns::Rdata{rrsig});
}

// ---------------------------------------------------------------------------
// Synthetic TLD authority
// ---------------------------------------------------------------------------

namespace {

/// Serves one TLD: referrals for universe SLDs (and provider SLDs under
/// .net), DS answers/denials, and signed negative responses.
class TldAuthority : public sim::Endpoint {
 public:
  TldAuthority(std::string tld, const Universe& universe,
               const zone::KeyPool& sld_keys, zone::ZoneKeys keys,
               const WorldOptions& options)
      : tld_(std::move(tld)),
        apex_(dns::Name::parse(tld_)),
        universe_(&universe),
        sld_keys_(&sld_keys),
        signer_(apex_, std::move(keys)),
        options_(&options) {}

  [[nodiscard]] std::string endpoint_id() const override {
    return "tld:" + tld_;
  }

  [[nodiscard]] dns::DsRdata ds_for_parent() const {
    return zone::make_ds(apex_, signer_.keys().ksk_record());
  }

  [[nodiscard]] dns::Message handle_query(const dns::Message& query) override {
    dns::Message response = dns::Message::make_response(query);
    response.header.aa = true;
    const dns::Question& question = query.question();
    const bool want_dnssec = query.dnssec_ok;

    if (!question.name.is_subdomain_of(apex_)) {
      response.header.rcode = dns::RCode::kRefused;
      return response;
    }
    // Apex infrastructure.
    if (question.name == apex_) {
      if (question.type == dns::RRType::kDnskey) {
        append(response.answers, signer_.dnskey_rrset(), want_dnssec, true);
      } else if (question.type == dns::RRType::kSoa) {
        append(response.answers, soa_rrset(), want_dnssec);
      } else if (question.type == dns::RRType::kNs) {
        append(response.answers, apex_ns_rrset(), want_dnssec);
      } else {
        nodata(response, apex_, want_dnssec);
      }
      return response;
    }

    // Identify the SLD the query lives under.
    const dns::Name sld = sld_of(question.name);
    std::optional<DomainInfo> info = universe_->info_by_name(sld);
    const std::optional<std::uint64_t> provider = universe_->provider_of(sld);
    if (!info.has_value() && !provider.has_value()) {
      nxdomain(response, question.name, want_dnssec);
      return response;
    }

    // Parent-side DS handling at the cut.
    if (question.name == sld && question.type == dns::RRType::kDs) {
      if (info.has_value() && info->dnssec_signed && info->ds_in_parent) {
        append(response.answers, ds_rrset(*info), want_dnssec);
      } else {
        nodata(response, sld, want_dnssec);
      }
      return response;
    }

    // Referral to the child.
    response.header.aa = false;
    const dns::RRset ns = ns_rrset(sld, info, provider);
    append(response.authorities, ns, /*sign=*/false);
    if (want_dnssec) {
      if (info.has_value() && info->dnssec_signed && info->ds_in_parent) {
        append(response.authorities, ds_rrset(*info), true);
      } else {
        // Signed parent, unsigned delegation: NSEC proof of no DS.
        append_no_ds_proof(response, sld);
      }
    }
    // Glue for in-bailiwick nameservers.
    const bool in_bailiwick =
        provider.has_value() || (info.has_value() && info->glue);
    if (in_bailiwick) {
      const dns::Name host = sld.with_prefix_label("ns1");
      response.additionals.push_back(dns::ResourceRecord::make(
          host, options_->record_ttl, dns::ARdata{synthetic_v4(host)}));
    }
    return response;
  }

 private:
  [[nodiscard]] dns::Name sld_of(const dns::Name& qname) const {
    dns::Name out = qname;
    while (out.label_count() > apex_.label_count() + 1) out = out.parent();
    return out;
  }

  [[nodiscard]] dns::RRset soa_rrset() const {
    dns::RRset out(apex_, dns::RRType::kSoa);
    out.add(dns::ResourceRecord::make(
        apex_, options_->record_ttl,
        synthetic_soa(apex_, options_->negative_ttl)));
    return out;
  }

  [[nodiscard]] dns::RRset apex_ns_rrset() const {
    dns::RRset out(apex_, dns::RRType::kNs);
    out.add(dns::ResourceRecord::make(
        apex_, options_->record_ttl,
        dns::NsRdata{apex_.with_prefix_label("ns1")}));
    return out;
  }

  [[nodiscard]] dns::RRset ns_rrset(const dns::Name& sld,
                                    const std::optional<DomainInfo>& info,
                                    std::optional<std::uint64_t> provider) const {
    dns::RRset out(sld, dns::RRType::kNs);
    dns::Name host;
    if (provider.has_value() || (info.has_value() && info->glue)) {
      host = sld.with_prefix_label("ns1");
    } else {
      host = universe_->provider_ns_host(info->provider);
    }
    out.add(dns::ResourceRecord::make(sld, options_->record_ttl,
                                      dns::NsRdata{host}));
    return out;
  }

  [[nodiscard]] dns::RRset ds_rrset(const DomainInfo& info) const {
    dns::RRset out(info.name, dns::RRType::kDs);
    out.add(dns::ResourceRecord::make(
        info.name, options_->record_ttl,
        dns::Rdata{zone::make_ds(
            info.name, sld_keys_->keys_for(info.rank).ksk_record())}));
    return out;
  }

  void append(std::vector<dns::ResourceRecord>& section, const dns::RRset& rrset,
              bool sign, bool with_ksk = false) {
    for (const dns::ResourceRecord& record : rrset.records()) {
      section.push_back(record);
    }
    if (sign) section.push_back(signer_.sign(rrset, with_ksk));
  }

  void append_no_ds_proof(dns::Message& response, const dns::Name& cut) {
    // NSEC at the cut itself: name exists, bitmap has NS only.
    dns::NsecRdata nsec;
    nsec.next = cut.with_prefix_label("0");  // first canonical successor
    nsec.types = {dns::RRType::kNs, dns::RRType::kRrsig, dns::RRType::kNsec};
    dns::RRset rrset(cut, dns::RRType::kNsec);
    rrset.add(dns::ResourceRecord::make(cut, options_->negative_ttl,
                                        dns::Rdata{nsec}));
    append(response.authorities, rrset, true);
  }

  void nodata(dns::Message& response, const dns::Name& qname,
              bool want_dnssec) {
    append(response.authorities, soa_rrset(), want_dnssec);
    if (want_dnssec && qname != apex_) append_no_ds_proof(response, qname);
  }

  void nxdomain(dns::Message& response, const dns::Name& qname,
                bool want_dnssec) {
    response.header.rcode = dns::RCode::kNxDomain;
    append(response.authorities, soa_rrset(), want_dnssec);
    if (!want_dnssec) return;
    // Narrow covering NSEC around the missing SLD label.
    const dns::Name sld = sld_of(qname);
    const std::string_view label = sld.label(0);
    dns::NsecRdata nsec;
    nsec.next = apex_.with_prefix_label(std::string(label) + "0");
    nsec.types = {dns::RRType::kNs, dns::RRType::kRrsig, dns::RRType::kNsec};
    const dns::Name owner = apex_.with_prefix_label(label_before(label));
    dns::RRset rrset(owner, dns::RRType::kNsec);
    rrset.add(dns::ResourceRecord::make(owner, options_->negative_ttl,
                                        dns::Rdata{nsec}));
    append(response.authorities, rrset, true);
  }

  std::string tld_;
  dns::Name apex_;
  const Universe* universe_;
  const zone::KeyPool* sld_keys_;
  SyntheticSigner signer_;
  const WorldOptions* options_;
};

/// One shared endpoint impersonating every SLD authoritative server (and
/// the out-of-bailiwick provider SLDs).
class SldAuthority : public sim::Endpoint {
 public:
  SldAuthority(const Universe& universe, const zone::KeyPool& keys,
               const WorldOptions& options)
      : universe_(&universe), keys_(&keys), options_(&options) {}

  [[nodiscard]] std::string endpoint_id() const override {
    return "auth:universe";
  }

  [[nodiscard]] std::uint64_t latency_override_us(
      const dns::Message& query) const override {
    if (query.questions.empty()) return 0;
    const dns::Name sld = registrable(query.question().name);
    return (10 + fnv1a(sld.internal_text()) % 71) * 1000;
  }

  [[nodiscard]] dns::Message handle_query(const dns::Message& query) override {
    dns::Message response = dns::Message::make_response(query);
    response.header.aa = true;
    const dns::Question& question = query.question();
    const bool want_dnssec = query.dnssec_ok;
    const dns::Name sld = registrable(question.name);

    // Provider nameserver zones: tiny unsigned zones with ns hosts.
    if (const auto provider = universe_->provider_of(sld)) {
      (void)provider;
      if (question.type == dns::RRType::kA &&
          (question.name == sld || question.name.label(0) == "ns1")) {
        response.answers.push_back(dns::ResourceRecord::make(
            question.name, options_->record_ttl,
            dns::ARdata{synthetic_v4(question.name)}));
      } else {
        append_plain_soa(response, sld);
      }
      return response;
    }

    const std::optional<DomainInfo> info = universe_->info_by_name(sld);
    if (!info.has_value()) {
      response.header.rcode = dns::RCode::kRefused;
      return response;
    }
    // §6.2.1 Z-bit remedy: signal deposited DLV records on every answer.
    if (options_->z_bit_signaling && info->dlv_deposited) {
      response.header.z = true;
    }

    SyntheticSigner* signer =
        info->dnssec_signed ? signer_for(*info) : nullptr;

    const bool apex = question.name == sld;
    const bool known_host =
        apex || question.name.label(0) == "www" ||
        question.name.label(0) == "ns1";

    if (!known_host) {
      nxdomain(response, *info, signer, want_dnssec);
      return response;
    }

    switch (question.type) {
      case dns::RRType::kA: {
        answer_rrset(response, question.name, options_->record_ttl,
                     dns::Rdata{dns::ARdata{synthetic_v4(question.name)}},
                     signer, want_dnssec);
        return response;
      }
      case dns::RRType::kAaaa: {
        answer_rrset(response, question.name, options_->record_ttl,
                     dns::Rdata{synthetic_v6(question.name)}, signer,
                     want_dnssec);
        return response;
      }
      case dns::RRType::kNs: {
        if (!apex) break;
        const dns::Name host = info->glue
                                   ? sld.with_prefix_label("ns1")
                                   : universe_->provider_ns_host(info->provider);
        answer_rrset(response, sld, options_->record_ttl,
                     dns::Rdata{dns::NsRdata{host}}, signer, want_dnssec);
        return response;
      }
      case dns::RRType::kTxt: {
        if (!apex || !options_->txt_signaling) break;
        answer_rrset(response, sld, options_->record_ttl,
                     dns::Rdata{dns::TxtRdata{
                         {info->dlv_deposited ? "dlv=1" : "dlv=0"}}},
                     signer, want_dnssec);
        return response;
      }
      case dns::RRType::kSoa: {
        if (!apex) break;
        answer_rrset(response, sld, options_->record_ttl,
                     dns::Rdata{synthetic_soa(sld, options_->negative_ttl)},
                     signer, want_dnssec);
        return response;
      }
      case dns::RRType::kDnskey: {
        if (!apex || signer == nullptr) break;
        const dns::RRset keys = signer->dnskey_rrset();
        for (const auto& record : keys.records()) {
          response.answers.push_back(record);
        }
        if (want_dnssec) {
          response.answers.push_back(signer->sign(keys, /*with_ksk=*/true));
        }
        return response;
      }
      default:
        break;
    }
    nodata(response, *info, question.name, signer, want_dnssec);
    return response;
  }

 private:
  [[nodiscard]] static dns::Name registrable(const dns::Name& qname) {
    dns::Name out = qname;
    while (out.label_count() > 2) out = out.parent();
    return out;
  }

  SyntheticSigner* signer_for(const DomainInfo& info) {
    auto it = signers_.find(info.rank);
    if (it == signers_.end()) {
      it = signers_
               .emplace(info.rank, std::make_unique<SyntheticSigner>(
                                       info.name, keys_->keys_for(info.rank)))
               .first;
    }
    return it->second.get();
  }

  void answer_rrset(dns::Message& response, const dns::Name& owner,
                    std::uint32_t ttl, dns::Rdata rdata,
                    SyntheticSigner* signer, bool want_dnssec) {
    dns::RRset rrset(owner, dns::rdata_type(rdata));
    rrset.add(dns::ResourceRecord::make(owner, ttl, std::move(rdata)));
    for (const auto& record : rrset.records()) {
      response.answers.push_back(record);
    }
    if (signer != nullptr && want_dnssec) {
      response.answers.push_back(signer->sign(rrset));
    }
  }

  void append_plain_soa(dns::Message& response, const dns::Name& sld) {
    response.authorities.push_back(dns::ResourceRecord::make(
        sld, options_->record_ttl,
        synthetic_soa(sld, options_->negative_ttl)));
  }

  void append_signed_negative(dns::Message& response, const DomainInfo& info,
                              const dns::Name& qname, SyntheticSigner* signer,
                              bool want_dnssec, bool nxdomain) {
    dns::RRset soa(info.name, dns::RRType::kSoa);
    soa.add(dns::ResourceRecord::make(
        info.name, options_->record_ttl,
        synthetic_soa(info.name, options_->negative_ttl)));
    for (const auto& record : soa.records()) {
      response.authorities.push_back(record);
    }
    if (signer == nullptr || !want_dnssec) return;
    response.authorities.push_back(signer->sign(soa));

    dns::NsecRdata nsec;
    dns::Name owner = qname;
    if (nxdomain) {
      owner = info.name.with_prefix_label(label_before(qname.label(0)));
      nsec.next = info.name.with_prefix_label(std::string(qname.label(0)) + "0");
      nsec.types = {dns::RRType::kA, dns::RRType::kRrsig, dns::RRType::kNsec};
    } else {
      nsec.next = qname.with_prefix_label("0");
      // The bitmap must list every type this authority answers at the name:
      // an aggressive-synthesis resolver (RFC 8198) will treat any omission
      // as a validated proof of absence and deny real data from cache.
      nsec.types = {dns::RRType::kA, dns::RRType::kAaaa};
      if (qname == info.name) {
        nsec.types.push_back(dns::RRType::kNs);
        nsec.types.push_back(dns::RRType::kSoa);
        if (options_->txt_signaling) nsec.types.push_back(dns::RRType::kTxt);
        if (signer != nullptr) nsec.types.push_back(dns::RRType::kDnskey);
      }
      nsec.types.push_back(dns::RRType::kRrsig);
      nsec.types.push_back(dns::RRType::kNsec);
    }
    dns::RRset nsec_set(owner, dns::RRType::kNsec);
    nsec_set.add(dns::ResourceRecord::make(owner, options_->negative_ttl,
                                           dns::Rdata{nsec}));
    for (const auto& record : nsec_set.records()) {
      response.authorities.push_back(record);
    }
    response.authorities.push_back(signer->sign(nsec_set));
  }

  void nodata(dns::Message& response, const DomainInfo& info,
              const dns::Name& qname, SyntheticSigner* signer,
              bool want_dnssec) {
    append_signed_negative(response, info, qname, signer, want_dnssec,
                           /*nxdomain=*/false);
  }

  void nxdomain(dns::Message& response, const DomainInfo& info,
                SyntheticSigner* signer, bool want_dnssec) {
    response.header.rcode = dns::RCode::kNxDomain;
    append_signed_negative(response, info,
                           response.question().name, signer, want_dnssec,
                           /*nxdomain=*/true);
  }

  const Universe* universe_;
  const zone::KeyPool* keys_;
  const WorldOptions* options_;
  std::map<std::uint64_t, std::unique_ptr<SyntheticSigner>> signers_;
};

/// Unsigned reverse-lookup authority for in-addr.arpa.
class PtrAuthority : public sim::Endpoint {
 public:
  explicit PtrAuthority(const WorldOptions& options) : options_(&options) {}

  [[nodiscard]] std::string endpoint_id() const override { return "arpa"; }

  [[nodiscard]] dns::Message handle_query(const dns::Message& query) override {
    dns::Message response = dns::Message::make_response(query);
    response.header.aa = true;
    const dns::Question& question = query.question();
    if (question.type == dns::RRType::kPtr) {
      const std::uint64_t hash = fnv1a(question.name.internal_text());
      response.answers.push_back(dns::ResourceRecord::make(
          question.name, options_->record_ttl,
          dns::PtrRdata{dns::Name::parse(
              "host-" + std::to_string(hash % 100000) + ".access.example")}));
    } else {
      response.authorities.push_back(dns::ResourceRecord::make(
          dns::Name::parse("in-addr.arpa"), options_->record_ttl,
          synthetic_soa(dns::Name::parse("in-addr.arpa"),
                        options_->negative_ttl)));
    }
    return response;
  }

 private:
  const WorldOptions* options_;
};

}  // namespace

// ---------------------------------------------------------------------------
// UniverseWorld
// ---------------------------------------------------------------------------

UniverseWorld::UniverseWorld(WorldOptions options)
    : options_(std::move(options)), universe_(options_.universe) {
  sld_keys_ = std::make_unique<zone::KeyPool>(
      options_.key_pool_size, options_.key_bits,
      crypto::derive_seed(options_.seed, 0xE11));

  // --- DLV registry populated from the deposit model. ---
  dlv::DlvRegistry::Options dlv_options = options_.dlv;
  dlv_options.key_bits = options_.key_bits;
  registry_ = std::make_unique<dlv::DlvRegistry>(dlv_options);
  const std::uint64_t scan_limit = options_.deposit_scan_limit == 0
                                       ? universe_.size()
                                       : options_.deposit_scan_limit;
  for (std::uint64_t rank = 1; rank <= scan_limit; ++rank) {
    const DomainInfo info = universe_.info(rank);
    if (!info.dlv_deposited) continue;
    registry_->deposit(
        info.name,
        zone::make_ds(info.name, sld_keys_->keys_for(rank).ksk_record()));
  }

  // --- Root zone (real, signed). ---
  crypto::SplitMix64 root_rng(crypto::derive_seed(options_.seed, 1));
  zone::ZoneKeys root_keys =
      zone::ZoneKeys::generate(options_.key_bits, root_rng);
  root_anchor_ = root_keys.ksk_record();
  zone::Zone root_zone(dns::Name::root(),
                       synthetic_soa(dns::Name::root(), options_.negative_ttl),
                       options_.record_ttl);

  // --- TLD authorities. ---
  std::uint64_t label = 100;
  for (const std::string& tld : universe_.tlds()) {
    crypto::SplitMix64 rng(crypto::derive_seed(options_.seed, ++label));
    auto authority = std::make_shared<TldAuthority>(
        tld, universe_, *sld_keys_,
        zone::ZoneKeys::generate(options_.key_bits, rng), options_);
    const dns::Name tld_name = dns::Name::parse(tld);
    const dns::Name ns_host = tld_name.with_prefix_label("ns1");
    root_zone.add(dns::ResourceRecord::make(tld_name, options_.record_ttl,
                                            dns::NsRdata{ns_host}));
    root_zone.add(dns::ResourceRecord::make(
        ns_host, options_.record_ttl, dns::ARdata{synthetic_v4(ns_host)}));
    root_zone.add(dns::ResourceRecord::make(
        tld_name, options_.record_ttl, dns::Rdata{authority->ds_for_parent()}));
    directory_.register_zone(tld_name, authority);
    tld_authorities_.push_back(std::move(authority));
  }

  // in-addr.arpa: unsigned delegation from the root.
  const dns::Name arpa = dns::Name::parse("in-addr.arpa");
  root_zone.add(dns::ResourceRecord::make(
      arpa, options_.record_ttl, dns::NsRdata{arpa.with_prefix_label("ns1")}));
  ptr_authority_ = std::make_shared<PtrAuthority>(options_);
  directory_.register_zone(arpa, ptr_authority_);

  auto signed_root = std::make_shared<zone::SignedZone>(std::move(root_zone),
                                                        std::move(root_keys));
  root_authority_ = std::make_shared<server::ZoneAuthority>("root", signed_root);
  directory_.register_zone(dns::Name::root(), root_authority_);

  // --- Shared SLD authority via directory fallback. ---
  sld_authority_ =
      std::make_shared<SldAuthority>(universe_, *sld_keys_, options_);
  directory_.register_zone(registry_->apex(),
                           std::shared_ptr<sim::Endpoint>(
                               registry_.get(), [](sim::Endpoint*) {}));
  sim::Endpoint* sld_raw = sld_authority_.get();
  directory_.set_fallback([sld_raw](const dns::Name&) { return sld_raw; });
}

}  // namespace lookaside::workload
