#include "workload/secured45.h"

namespace lookaside::workload {

namespace {

const char* tld_for_index(std::size_t index) {
  switch (index % 4) {
    case 0: return "com";
    case 1: return "org";
    case 2: return "net";
    default: return "edu";
  }
}

bool is_island_index(std::size_t index) {
  // Five islands spread through the list (indices 3, 12, 21, 30, 39).
  return index % 9 == 3;
}

std::string domain_name(std::size_t index) {
  std::string number = std::to_string(index + 1);
  if (number.size() < 2) number = "0" + number;
  return "secure" + number + "." + tld_for_index(index);
}

}  // namespace

std::vector<server::SldSpec> secured_45_specs() {
  std::vector<server::SldSpec> out;
  out.reserve(kSecuredDomainCount);
  for (std::size_t i = 0; i < kSecuredDomainCount; ++i) {
    server::SldSpec spec;
    spec.name = domain_name(i);
    spec.dnssec_signed = true;
    spec.ds_in_parent = !is_island_index(i);
    out.push_back(std::move(spec));
  }
  return out;
}

std::vector<std::string> secured_45_island_names() {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < kSecuredDomainCount; ++i) {
    if (is_island_index(i)) out.push_back(domain_name(i));
  }
  return out;
}

}  // namespace lookaside::workload
