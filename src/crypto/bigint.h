// Arbitrary-precision unsigned integers with Montgomery modular arithmetic.
//
// Sized for DNSSEC simulation: moduli of 256-1024 bits. Limbs are 32-bit so
// all intermediate products fit in uint64_t without compiler extensions.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/bytes.h"

namespace lookaside::crypto {

/// Unsigned big integer; value-semantic, little-endian 32-bit limbs,
/// always normalized (no trailing zero limbs; zero == empty limb vector).
class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(std::uint64_t value);

  /// Parses big-endian bytes (leading zeros allowed).
  [[nodiscard]] static BigUint from_bytes_be(const Bytes& bytes);

  /// Serializes big-endian; zero-pads on the left to at least `min_width`.
  [[nodiscard]] Bytes to_bytes_be(std::size_t min_width = 0) const;

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const {
    return !limbs_.empty() && (limbs_[0] & 1u);
  }
  /// Number of significant bits; 0 for zero.
  [[nodiscard]] std::size_t bit_length() const;
  /// Value of bit `i` (LSB = 0); bits beyond bit_length() read as 0.
  [[nodiscard]] bool bit(std::size_t i) const;

  /// Three-way comparison: -1, 0, or +1.
  [[nodiscard]] int compare(const BigUint& other) const;
  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const BigUint& a, const BigUint& b) {
    return a.compare(b) != 0;
  }
  friend bool operator<(const BigUint& a, const BigUint& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigUint& a, const BigUint& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigUint& a, const BigUint& b) {
    return a.compare(b) >= 0;
  }

  [[nodiscard]] static BigUint add(const BigUint& a, const BigUint& b);
  /// Requires a >= b; throws std::invalid_argument otherwise.
  [[nodiscard]] static BigUint sub(const BigUint& a, const BigUint& b);
  [[nodiscard]] static BigUint mul(const BigUint& a, const BigUint& b);

  [[nodiscard]] BigUint shifted_left(std::size_t bits) const;
  [[nodiscard]] BigUint shifted_right(std::size_t bits) const;

  /// Computes quotient and remainder of a / b; throws on division by zero.
  static void divmod(const BigUint& a, const BigUint& b, BigUint& quotient,
                     BigUint& remainder);
  [[nodiscard]] static BigUint mod(const BigUint& a, const BigUint& m);

  /// Greatest common divisor.
  [[nodiscard]] static BigUint gcd(BigUint a, BigUint b);

  /// Modular inverse of a mod m; throws std::domain_error if not coprime.
  [[nodiscard]] static BigUint mod_inverse(const BigUint& a, const BigUint& m);

  /// Remainder of this modulo a small divisor; divisor must be nonzero.
  [[nodiscard]] std::uint32_t mod_u32(std::uint32_t divisor) const;

  /// Low 64 bits of the value.
  [[nodiscard]] std::uint64_t low_u64() const;

  [[nodiscard]] const std::vector<std::uint32_t>& limbs() const {
    return limbs_;
  }

 private:
  void normalize();

  std::vector<std::uint32_t> limbs_;
};

/// Precomputed Montgomery context for a fixed odd modulus > 1.
/// All public methods take/return ordinary (non-Montgomery-form) values.
class Montgomery {
 public:
  explicit Montgomery(const BigUint& modulus);

  [[nodiscard]] const BigUint& modulus() const { return modulus_; }

  /// (a * b) mod n.
  [[nodiscard]] BigUint mul(const BigUint& a, const BigUint& b) const;

  /// (base ^ exponent) mod n via left-to-right square-and-multiply.
  [[nodiscard]] BigUint exp(const BigUint& base, const BigUint& exponent) const;

 private:
  using Limbs = std::vector<std::uint32_t>;

  /// Montgomery product: out = a * b * R^{-1} mod n, all k-limb vectors.
  void mont_mul(const Limbs& a, const Limbs& b, Limbs& out) const;
  [[nodiscard]] Limbs to_limbs(const BigUint& value) const;
  [[nodiscard]] static BigUint from_limbs(const Limbs& limbs);

  BigUint modulus_;
  std::size_t k_;           // limb count of the modulus
  std::uint32_t n0_inv_;    // -n^{-1} mod 2^32
  Limbs r2_;                // R^2 mod n, in plain form, k limbs
  Limbs n_limbs_;           // modulus, k limbs
};

}  // namespace lookaside::crypto
