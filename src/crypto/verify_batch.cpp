#include "crypto/verify_batch.h"

namespace lookaside::crypto {

void VerifyBatch::begin() {
  if (depth_ == 0) outcomes_.clear();
  ++depth_;
}

void VerifyBatch::end() {
  if (depth_ > 0 && --depth_ == 0) outcomes_.clear();
}

std::optional<bool> VerifyBatch::lookup(std::uint64_t key) const {
  const auto it = outcomes_.find(key);
  if (it == outcomes_.end()) return std::nullopt;
  return it->second;
}

void VerifyBatch::record(std::uint64_t key, bool outcome) {
  outcomes_.emplace(key, outcome);
  ++unique_;
}

}  // namespace lookaside::crypto
