// Deterministic PRNG used throughout the simulator.
//
// SplitMix64 passes the statistical tests relevant here and, crucially, is
// trivially seedable so every experiment in the repository is exactly
// reproducible from a single seed.
#pragma once

#include <cstdint>

#include "crypto/bytes.h"

namespace lookaside::crypto {

/// SplitMix64 PRNG (value-semantic, copyable for forked deterministic
/// streams).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound); bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Fills `out` with random bytes.
  void fill(Bytes& out) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (i % 8 == 0) cached_ = next();
      out[i] = static_cast<std::uint8_t>(cached_ >> (8 * (i % 8)));
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t cached_ = 0;
};

/// Derives a child seed from a parent seed and a label, so independent
/// components of an experiment get decorrelated deterministic streams.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t parent,
                                        std::uint64_t label);

}  // namespace lookaside::crypto
