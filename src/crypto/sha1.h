// SHA-1 (FIPS 180-4), used only where the DNSSEC specs require it:
// DS digest type 1 and the paper's Fig. 2 narration. Not used for new
// signatures.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "crypto/bytes.h"

namespace lookaside::crypto {

/// Incremental SHA-1 context. Interface mirrors Sha256.
class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;

  Sha1();

  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(std::string_view text) {
    update(reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  }

  /// Finalizes and returns the 20-byte digest; context is spent afterwards.
  [[nodiscard]] Bytes finish();

  [[nodiscard]] static Bytes digest(const Bytes& data);
  [[nodiscard]] static Bytes digest(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace lookaside::crypto
