// RSA key generation, signing and verification for the DNSSEC substrate.
//
// This mirrors RSASHA256 (DNSSEC algorithm 8): EMSA-PKCS1-v1_5-style padding
// over a SHA-256 digest. Key sizes are configurable down to 256 bits so that
// million-domain simulations stay fast; small keys are a simulation speed
// knob, not a security recommendation (see DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "crypto/bigint.h"
#include "crypto/bytes.h"
#include "crypto/rng.h"

namespace lookaside::crypto {

/// RSA public key (n, e) plus a cached Montgomery context for fast verify.
class RsaPublicKey {
 public:
  RsaPublicKey(BigUint modulus, BigUint public_exponent);

  [[nodiscard]] const BigUint& modulus() const { return n_; }
  [[nodiscard]] const BigUint& exponent() const { return e_; }
  [[nodiscard]] std::size_t modulus_bytes() const { return modulus_bytes_; }

  /// RFC 3110-style wire form: explen(1) | exponent | modulus.
  [[nodiscard]] Bytes to_wire() const;
  [[nodiscard]] static std::optional<RsaPublicKey> from_wire(const Bytes& wire);

  /// Verifies `signature` over `digest` (already hashed message).
  [[nodiscard]] bool verify_digest(const Bytes& digest,
                                   const Bytes& signature) const;

 private:
  friend class RsaPrivateKey;
  BigUint n_;
  BigUint e_;
  std::size_t modulus_bytes_;
  Montgomery mont_;
};

/// RSA private key; holds the matching public key. When constructed with
/// the prime factorization, signing uses the CRT (about 4x faster — the
/// simulator signs on-line, so this matters at the million-domain scale).
class RsaPrivateKey {
 public:
  RsaPrivateKey(RsaPublicKey public_key, BigUint private_exponent);
  RsaPrivateKey(RsaPublicKey public_key, BigUint private_exponent, BigUint p,
                BigUint q);

  [[nodiscard]] const RsaPublicKey& public_key() const { return public_; }

  /// Signs an already-hashed message; output is modulus-width bytes.
  [[nodiscard]] Bytes sign_digest(const Bytes& digest) const;

 private:
  struct CrtState {
    BigUint p, q, dp, dq, q_inv_mod_p;
    Montgomery mont_p, mont_q;
  };

  RsaPublicKey public_;
  BigUint d_;
  std::shared_ptr<const CrtState> crt_;  // shared: keys are copied freely
};

/// A freshly generated RSA key pair.
struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;
};

/// Generates an RSA key pair with an n of `modulus_bits` (>= 256, multiple of
/// 32) and e = 65537, using the caller's deterministic RNG.
[[nodiscard]] RsaKeyPair generate_rsa_keypair(std::size_t modulus_bits,
                                              SplitMix64& rng);

/// Miller-Rabin primality test with `rounds` random bases. Exposed for tests.
[[nodiscard]] bool is_probable_prime(const BigUint& candidate, SplitMix64& rng,
                                     int rounds = 24);

/// Builds the padded EMSA block for a digest and modulus width; exposed for
/// tests. For widths too small for full PKCS#1 padding the digest is
/// truncated (documented simulation shortcut).
[[nodiscard]] Bytes emsa_pad(const Bytes& digest, std::size_t modulus_bytes);

}  // namespace lookaside::crypto
