#include "crypto/dnssec_algo.h"

#include "crypto/sha256.h"

namespace lookaside::crypto {

bool algorithm_supported(std::uint8_t algorithm) {
  return algorithm == static_cast<std::uint8_t>(DnssecAlgorithm::kRsaSha256);
}

Bytes sign_message(const RsaPrivateKey& key, const Bytes& message) {
  return key.sign_digest(Sha256::digest(message));
}

bool verify_message(const RsaPublicKey& key, const Bytes& message,
                    const Bytes& signature) {
  return key.verify_digest(Sha256::digest(message), signature);
}

std::uint16_t key_tag(const Bytes& dnskey_rdata) {
  std::uint32_t accumulator = 0;
  for (std::size_t i = 0; i < dnskey_rdata.size(); ++i) {
    accumulator += (i & 1) ? dnskey_rdata[i]
                           : static_cast<std::uint32_t>(dnskey_rdata[i]) << 8;
  }
  accumulator += (accumulator >> 16) & 0xFFFF;
  return static_cast<std::uint16_t>(accumulator & 0xFFFF);
}

}  // namespace lookaside::crypto
