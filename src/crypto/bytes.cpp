#include "crypto/bytes.h"

#include <stdexcept>

namespace lookaside::crypto {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("invalid hex digit");
}
}  // namespace

std::string to_hex(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0F]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("odd-length hex string");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) << 4 |
                                            hex_value(hex[i + 1])));
  }
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

}  // namespace lookaside::crypto
