// Batched RSA verification (DESIGN.md §4k): per-resolve-step deduplication
// of identical signature checks before any bigint work runs.
//
// One recursive resolution verifies the same (signed data, signature, key)
// tuple more than once by construction: the validator checks a negative
// response's NSEC RRsets once to decide bogus-vs-secure and again when the
// aggressive cache ingests them, the trust chain re-verifies zone DNSKEY
// self-signatures per fetched response, and DLV label-stripping walks
// present the same wildcard-covering span at several candidate names. The
// batch groups those pending verifications under their 64-bit content key
// (the verdict cache's key: signed data ⊕ signature ⊕ key material ⊕ key
// tag) and answers repeats from the first outcome, so each distinct tuple
// costs exactly one modular exponentiation per batch window.
//
// Scope: a window opens at resolve() entry and closes at exit (re-entrant
// via a depth counter). Within the window outcomes are exact — the same
// bytes verify to the same bool — so dedup is observably free: control flow,
// counters billed to the virtual clock, and every byte of bench output are
// identical with the batch on or off. The validator's verdict cache
// (DESIGN.md §4j) sits in front and persists *across* resolutions; the
// batch only sees tuples the verdict cache missed (cache disabled, or an
// epoch flush landed mid-resolution), and hands its outcomes back through
// the verdict-cache write path so the `verdict.*` bills stay exact.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace lookaside::crypto {

class VerifyBatch {
 public:
  /// Opens a batch window (re-entrant: nested begins stack). The memo is
  /// cleared at the outermost begin, so stale outcomes never leak across
  /// resolutions.
  void begin();

  /// Closes one window level; the outermost end drops the memo.
  void end();

  [[nodiscard]] bool active() const { return depth_ > 0; }

  /// Outcome already computed for `key` in this window, else nullopt.
  [[nodiscard]] std::optional<bool> lookup(std::uint64_t key) const;

  /// Records the outcome of one executed verification.
  void record(std::uint64_t key, bool outcome);

  /// Counts a repeat answered from the memo (for the caller's billing).
  void count_dedup() { ++deduped_; }

  /// Distinct verifications executed while a window was open (lifetime
  /// total across windows).
  [[nodiscard]] std::uint64_t unique_verifications() const { return unique_; }
  /// Repeat verifications answered without bigint work (lifetime total).
  [[nodiscard]] std::uint64_t deduped_verifications() const {
    return deduped_;
  }

  /// Tuples pending in the current window.
  [[nodiscard]] std::size_t pending() const { return outcomes_.size(); }

 private:
  int depth_ = 0;
  std::unordered_map<std::uint64_t, bool> outcomes_;
  std::uint64_t unique_ = 0;
  std::uint64_t deduped_ = 0;
};

/// RAII window over `batch.begin()` / `end()` for exception-safe scoping at
/// the resolver's front door.
class VerifyBatchScope {
 public:
  explicit VerifyBatchScope(VerifyBatch& batch) : batch_(&batch) {
    batch_->begin();
  }
  ~VerifyBatchScope() { batch_->end(); }
  VerifyBatchScope(const VerifyBatchScope&) = delete;
  VerifyBatchScope& operator=(const VerifyBatchScope&) = delete;

 private:
  VerifyBatch* batch_;
};

}  // namespace lookaside::crypto
