#include "crypto/sha1.h"

#include <cstring>

namespace lookaside::crypto {

namespace {
inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}
}  // namespace

Sha1::Sha1()
    : state_{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0},
      buffer_{} {}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[i * 4]) << 24 |
           static_cast<std::uint32_t>(block[i * 4 + 1]) << 16 |
           static_cast<std::uint32_t>(block[i * 4 + 2]) << 8 |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(const std::uint8_t* data, std::size_t len) {
  total_bytes_ += len;
  while (len > 0) {
    if (buffered_ == 0 && len >= 64) {
      process_block(data);
      data += 64;
      len -= 64;
      continue;
    }
    const std::size_t take = std::min<std::size_t>(64 - buffered_, len);
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
}

Bytes Sha1::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(&pad_byte, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(length_bytes, 8);

  Bytes digest(kDigestSize);
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Bytes Sha1::digest(const Bytes& data) {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finish();
}

Bytes Sha1::digest(std::string_view text) {
  Sha1 ctx;
  ctx.update(text);
  return ctx.finish();
}

}  // namespace lookaside::crypto
