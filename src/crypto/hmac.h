// HMAC-SHA256 (RFC 2104). Used by the deterministic RNG seeding helpers and
// available for TSIG-style extensions.
#pragma once

#include "crypto/bytes.h"

namespace lookaside::crypto {

/// Computes HMAC-SHA256(key, message).
[[nodiscard]] Bytes hmac_sha256(const Bytes& key, const Bytes& message);

}  // namespace lookaside::crypto
