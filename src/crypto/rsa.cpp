#include "crypto/rsa.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace lookaside::crypto {

namespace {

constexpr std::uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109,
    113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269,
    271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353,
    359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433, 439,
    443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523,
    541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617,
    619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701, 709,
    719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809, 811,
    821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907,
    911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};

BigUint random_odd_with_top_bits(std::size_t bits, SplitMix64& rng) {
  Bytes bytes((bits + 7) / 8);
  rng.fill(bytes);
  // Force the exact bit length and set the second-highest bit so products of
  // two such primes reach the full modulus width.
  const std::size_t top_bit = (bits - 1) % 8;
  bytes[0] |= static_cast<std::uint8_t>(1u << top_bit);
  if (top_bit == 0) {
    bytes[0] = 1;
    if (bytes.size() > 1) bytes[1] |= 0x80;
  } else {
    bytes[0] |= static_cast<std::uint8_t>(1u << (top_bit - 1));
  }
  bytes.back() |= 0x01;  // odd
  return BigUint::from_bytes_be(bytes);
}

BigUint generate_prime(std::size_t bits, SplitMix64& rng) {
  for (;;) {
    BigUint candidate = random_odd_with_top_bits(bits, rng);
    bool divisible = false;
    for (std::uint32_t p : kSmallPrimes) {
      if (candidate.mod_u32(p) == 0) {
        divisible = candidate != BigUint(p);
        break;
      }
    }
    if (divisible) continue;
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace

bool is_probable_prime(const BigUint& candidate, SplitMix64& rng, int rounds) {
  if (candidate < BigUint(2)) return false;
  if (candidate == BigUint(2) || candidate == BigUint(3)) return true;
  if (!candidate.is_odd()) return false;

  // candidate - 1 = d * 2^r with d odd.
  const BigUint n_minus_1 = BigUint::sub(candidate, BigUint(1));
  std::size_t r = 0;
  BigUint d = n_minus_1;
  while (!d.is_odd()) {
    d = d.shifted_right(1);
    ++r;
  }

  const Montgomery mont(candidate);
  const std::size_t bits = candidate.bit_length();
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    Bytes raw((bits + 7) / 8);
    rng.fill(raw);
    BigUint base = BigUint::mod(BigUint::from_bytes_be(raw),
                                BigUint::sub(candidate, BigUint(3)));
    base = BigUint::add(base, BigUint(2));

    BigUint x = mont.exp(base, d);
    if (x == BigUint(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = mont.mul(x, x);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

Bytes emsa_pad(const Bytes& digest, std::size_t modulus_bytes) {
  if (modulus_bytes < 16) {
    throw std::invalid_argument("modulus too small for EMSA padding");
  }
  // Full PKCS#1 v1.5 layout needs digest + 11 bytes; otherwise truncate the
  // digest to fit (simulation shortcut for small keys, see header).
  const std::size_t digest_len =
      std::min(digest.size(), modulus_bytes - 11);
  Bytes em(modulus_bytes, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[modulus_bytes - digest_len - 1] = 0x00;
  for (std::size_t i = 0; i < digest_len; ++i) {
    em[modulus_bytes - digest_len + i] = digest[i];
  }
  return em;
}

RsaPublicKey::RsaPublicKey(BigUint modulus, BigUint public_exponent)
    : n_(std::move(modulus)),
      e_(std::move(public_exponent)),
      modulus_bytes_((n_.bit_length() + 7) / 8),
      mont_(n_) {}

Bytes RsaPublicKey::to_wire() const {
  const Bytes exp_bytes = e_.to_bytes_be();
  if (exp_bytes.size() > 255) {
    throw std::invalid_argument("public exponent too large for wire form");
  }
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(exp_bytes.size()));
  out.insert(out.end(), exp_bytes.begin(), exp_bytes.end());
  const Bytes mod_bytes = n_.to_bytes_be();
  out.insert(out.end(), mod_bytes.begin(), mod_bytes.end());
  return out;
}

std::optional<RsaPublicKey> RsaPublicKey::from_wire(const Bytes& wire) {
  if (wire.size() < 2) return std::nullopt;
  const std::size_t exp_len = wire[0];
  if (exp_len == 0 || wire.size() < 1 + exp_len + 1) return std::nullopt;
  const Bytes exp_bytes(wire.begin() + 1, wire.begin() + 1 + static_cast<std::ptrdiff_t>(exp_len));
  const Bytes mod_bytes(wire.begin() + 1 + static_cast<std::ptrdiff_t>(exp_len), wire.end());
  BigUint n = BigUint::from_bytes_be(mod_bytes);
  if (!n.is_odd()) return std::nullopt;  // RSA modulus is odd
  return RsaPublicKey(std::move(n), BigUint::from_bytes_be(exp_bytes));
}

bool RsaPublicKey::verify_digest(const Bytes& digest,
                                 const Bytes& signature) const {
  if (signature.size() != modulus_bytes_) return false;
  const BigUint sig_int = BigUint::from_bytes_be(signature);
  if (sig_int >= n_) return false;
  const BigUint em_int = mont_.exp(sig_int, e_);
  return em_int.to_bytes_be(modulus_bytes_) == emsa_pad(digest, modulus_bytes_);
}

RsaPrivateKey::RsaPrivateKey(RsaPublicKey public_key, BigUint private_exponent)
    : public_(std::move(public_key)), d_(std::move(private_exponent)) {}

RsaPrivateKey::RsaPrivateKey(RsaPublicKey public_key, BigUint private_exponent,
                             BigUint p, BigUint q)
    : public_(std::move(public_key)), d_(std::move(private_exponent)) {
  const BigUint p_minus_1 = BigUint::sub(p, BigUint(1));
  const BigUint q_minus_1 = BigUint::sub(q, BigUint(1));
  crt_ = std::make_shared<const CrtState>(CrtState{
      p,
      q,
      BigUint::mod(d_, p_minus_1),
      BigUint::mod(d_, q_minus_1),
      BigUint::mod_inverse(q, p),
      Montgomery(p),
      Montgomery(q),
  });
}

Bytes RsaPrivateKey::sign_digest(const Bytes& digest) const {
  const Bytes em = emsa_pad(digest, public_.modulus_bytes());
  const BigUint em_int = BigUint::from_bytes_be(em);
  if (crt_ == nullptr) {
    const BigUint sig = public_.mont_.exp(em_int, d_);
    return sig.to_bytes_be(public_.modulus_bytes());
  }
  // Garner's CRT recombination: sig = m2 + q * ((m1 - m2) * q^-1 mod p).
  const BigUint m1 = crt_->mont_p.exp(em_int, crt_->dp);
  const BigUint m2 = crt_->mont_q.exp(em_int, crt_->dq);
  const BigUint m2_mod_p = BigUint::mod(m2, crt_->p);
  const BigUint diff = m1 >= m2_mod_p
                           ? BigUint::sub(m1, m2_mod_p)
                           : BigUint::sub(BigUint::add(m1, crt_->p), m2_mod_p);
  const BigUint h = crt_->mont_p.mul(diff, crt_->q_inv_mod_p);
  const BigUint sig = BigUint::add(m2, BigUint::mul(crt_->q, h));
  return sig.to_bytes_be(public_.modulus_bytes());
}

RsaKeyPair generate_rsa_keypair(std::size_t modulus_bits, SplitMix64& rng) {
  if (modulus_bits < 256 || modulus_bits % 32 != 0) {
    throw std::invalid_argument(
        "modulus_bits must be >= 256 and a multiple of 32");
  }
  const BigUint e(65537);
  for (;;) {
    const BigUint p = generate_prime(modulus_bits / 2, rng);
    const BigUint q = generate_prime(modulus_bits / 2, rng);
    if (p == q) continue;
    const BigUint n = BigUint::mul(p, q);
    if (n.bit_length() != modulus_bits) continue;
    const BigUint phi = BigUint::mul(BigUint::sub(p, BigUint(1)),
                                     BigUint::sub(q, BigUint(1)));
    if (BigUint::gcd(e, phi) != BigUint(1)) continue;
    BigUint d = BigUint::mod_inverse(e, phi);
    RsaPublicKey pub(n, e);
    RsaPrivateKey priv(pub, std::move(d), p, q);
    return RsaKeyPair{std::move(pub), std::move(priv)};
  }
}

}  // namespace lookaside::crypto
