#include "crypto/bigint.h"

#include <algorithm>
#include <span>
#include <stdexcept>

namespace lookaside::crypto {

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
  if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigUint::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_bytes_be(const Bytes& bytes) {
  BigUint out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // bytes[i] is the (bytes.size()-1-i)-th byte from the LSB end.
    const std::size_t byte_index = bytes.size() - 1 - i;
    out.limbs_[byte_index / 4] |= static_cast<std::uint32_t>(bytes[i])
                                  << (8 * (byte_index % 4));
  }
  out.normalize();
  return out;
}

Bytes BigUint::to_bytes_be(std::size_t min_width) const {
  const std::size_t significant = (bit_length() + 7) / 8;
  const std::size_t width = std::max(min_width, std::max<std::size_t>(significant, 1));
  Bytes out(width, 0);
  for (std::size_t i = 0; i < significant; ++i) {
    out[width - 1 - i] =
        static_cast<std::uint8_t>(limbs_[i / 4] >> (8 * (i % 4)));
  }
  return out;
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

int BigUint::compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUint BigUint::add(const BigUint& a, const BigUint& b) {
  BigUint out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.normalize();
  return out;
}

BigUint BigUint::sub(const BigUint& a, const BigUint& b) {
  if (a.compare(b) < 0) throw std::invalid_argument("BigUint::sub underflow");
  BigUint out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.normalize();
  return out;
}

BigUint BigUint::mul(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return BigUint{};
  BigUint out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(a.limbs_[i]) * b.limbs_[j] +
          out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + b.limbs_.size()] += static_cast<std::uint32_t>(carry);
  }
  out.normalize();
  return out;
}

BigUint BigUint::shifted_left(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigUint out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t value = static_cast<std::uint64_t>(limbs_[i])
                                << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(value);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(value >> 32);
  }
  out.normalize();
  return out;
}

BigUint BigUint::shifted_right(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigUint{};
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t value = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      value |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
               << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(value);
  }
  out.normalize();
  return out;
}

void BigUint::divmod(const BigUint& a, const BigUint& b, BigUint& quotient,
                     BigUint& remainder) {
  if (b.is_zero()) throw std::invalid_argument("BigUint division by zero");
  if (a.compare(b) < 0) {
    quotient = BigUint{};
    remainder = a;
    return;
  }
  // Binary long division: O(bits(a) * limbs(b)); plenty for key generation.
  BigUint q;
  BigUint r;
  const std::size_t total_bits = a.bit_length();
  q.limbs_.assign((total_bits + 31) / 32, 0);
  for (std::size_t i = total_bits; i-- > 0;) {
    r = r.shifted_left(1);
    if (a.bit(i)) {
      if (r.limbs_.empty()) r.limbs_.push_back(1);
      else r.limbs_[0] |= 1u;
    }
    if (r.compare(b) >= 0) {
      r = sub(r, b);
      q.limbs_[i / 32] |= 1u << (i % 32);
    }
  }
  q.normalize();
  r.normalize();
  quotient = std::move(q);
  remainder = std::move(r);
}

BigUint BigUint::mod(const BigUint& a, const BigUint& m) {
  BigUint q, r;
  divmod(a, m, q, r);
  return r;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint r = mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::uint32_t BigUint::mod_u32(std::uint32_t divisor) const {
  if (divisor == 0) throw std::invalid_argument("mod_u32 by zero");
  std::uint64_t remainder = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    remainder = ((remainder << 32) | limbs_[i]) % divisor;
  }
  return static_cast<std::uint32_t>(remainder);
}

std::uint64_t BigUint::low_u64() const {
  std::uint64_t value = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) value |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return value;
}

namespace {

/// Minimal signed wrapper for the extended Euclid bookkeeping.
struct SignedBig {
  BigUint magnitude;
  bool negative = false;

  [[nodiscard]] static SignedBig sub(const SignedBig& a, const SignedBig& b) {
    // a - b.
    if (a.negative == b.negative) {
      if (a.magnitude.compare(b.magnitude) >= 0) {
        return {BigUint::sub(a.magnitude, b.magnitude), a.negative};
      }
      return {BigUint::sub(b.magnitude, a.magnitude), !a.negative};
    }
    return {BigUint::add(a.magnitude, b.magnitude), a.negative};
  }

  [[nodiscard]] static SignedBig mul(const SignedBig& a, const BigUint& b) {
    return {BigUint::mul(a.magnitude, b), a.negative && !a.magnitude.is_zero()};
  }
};

}  // namespace

BigUint BigUint::mod_inverse(const BigUint& a, const BigUint& m) {
  if (m.is_zero()) throw std::domain_error("mod_inverse: zero modulus");
  BigUint r0 = mod(a, m);
  BigUint r1 = m;
  SignedBig s0{BigUint(1), false};
  SignedBig s1{BigUint{}, false};
  // Invariant: s_i * a ≡ r_i (mod m).
  while (!r1.is_zero()) {
    BigUint q, rem;
    divmod(r0, r1, q, rem);
    r0 = std::move(r1);
    r1 = std::move(rem);
    SignedBig s_next = SignedBig::sub(s0, SignedBig::mul(s1, q));
    s0 = std::move(s1);
    s1 = std::move(s_next);
  }
  if (r0 != BigUint(1)) throw std::domain_error("mod_inverse: not coprime");
  if (s0.negative) {
    // s0 is > -m in magnitude, so one addition suffices.
    return sub(m, mod(s0.magnitude, m));
  }
  return mod(s0.magnitude, m);
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic
// ---------------------------------------------------------------------------

Montgomery::Montgomery(const BigUint& modulus) : modulus_(modulus) {
  if (!modulus.is_odd() || modulus.bit_length() < 2) {
    throw std::invalid_argument("Montgomery modulus must be odd and > 1");
  }
  if (modulus.limbs().size() > 64) {
    throw std::invalid_argument("Montgomery modulus wider than 2048 bits");
  }
  k_ = modulus.limbs().size();
  n_limbs_ = modulus.limbs();

  // n0_inv = -n^{-1} mod 2^32 via Newton-Hensel lifting.
  const std::uint32_t n0 = n_limbs_[0];
  std::uint32_t inv = 1;
  for (int i = 0; i < 5; ++i) inv *= 2u - n0 * inv;  // inv = n0^{-1} mod 2^32
  n0_inv_ = ~inv + 1u;                               // -inv mod 2^32

  // R^2 mod n where R = 2^(32k).
  const BigUint r = BigUint(1).shifted_left(32 * k_);
  const BigUint r_mod_n = BigUint::mod(r, modulus_);
  r2_ = to_limbs(BigUint::mod(BigUint::mul(r_mod_n, r_mod_n), modulus_));
}

Montgomery::Limbs Montgomery::to_limbs(const BigUint& value) const {
  Limbs out = value.limbs();
  out.resize(k_, 0);
  return out;
}

BigUint Montgomery::from_limbs(const Limbs& limbs) {
  Bytes be;  // Build via bytes to reuse normalization.
  be.resize(limbs.size() * 4);
  for (std::size_t i = 0; i < limbs.size(); ++i) {
    const std::uint32_t limb = limbs[i];
    const std::size_t base = (limbs.size() - 1 - i) * 4;
    be[base] = static_cast<std::uint8_t>(limb >> 24);
    be[base + 1] = static_cast<std::uint8_t>(limb >> 16);
    be[base + 2] = static_cast<std::uint8_t>(limb >> 8);
    be[base + 3] = static_cast<std::uint8_t>(limb);
  }
  return BigUint::from_bytes_be(be);
}

void Montgomery::mont_mul(const Limbs& a, const Limbs& b, Limbs& out) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  // Stack scratch: moduli are <= 2048 bits (64 limbs); constructor enforces.
  std::uint32_t t_storage[66] = {0};
  const std::span<std::uint32_t> t(t_storage, k_ + 2);
  for (std::size_t i = 0; i < k_; ++i) {
    // t += a * b[i]
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(t[j]) +
          static_cast<std::uint64_t>(a[j]) * b[i] + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = static_cast<std::uint64_t>(t[k_]) + carry;
    t[k_] = static_cast<std::uint32_t>(cur);
    t[k_ + 1] = static_cast<std::uint32_t>(cur >> 32);

    // t = (t + m*n) / 2^32 with m chosen so the low limb cancels.
    const std::uint32_t m =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(t[0]) * n0_inv_);
    carry = (static_cast<std::uint64_t>(t[0]) +
             static_cast<std::uint64_t>(m) * n_limbs_[0]) >>
            32;
    for (std::size_t j = 1; j < k_; ++j) {
      const std::uint64_t cur2 =
          static_cast<std::uint64_t>(t[j]) +
          static_cast<std::uint64_t>(m) * n_limbs_[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur2);
      carry = cur2 >> 32;
    }
    cur = static_cast<std::uint64_t>(t[k_]) + carry;
    t[k_ - 1] = static_cast<std::uint32_t>(cur);
    t[k_] = t[k_ + 1] + static_cast<std::uint32_t>(cur >> 32);
    t[k_ + 1] = 0;
  }

  // Conditional final subtraction so the result is < n.
  bool geq = t[k_] != 0;
  if (!geq) {
    geq = true;
    for (std::size_t i = k_; i-- > 0;) {
      if (t[i] != n_limbs_[i]) {
        geq = t[i] > n_limbs_[i];
        break;
      }
    }
  }
  out.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(k_));
  if (geq) {
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      std::int64_t diff =
          static_cast<std::int64_t>(out[i]) - n_limbs_[i] - borrow;
      if (diff < 0) {
        diff += (1LL << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      out[i] = static_cast<std::uint32_t>(diff);
    }
  }
}

BigUint Montgomery::mul(const BigUint& a, const BigUint& b) const {
  const Limbs a_mont_in = to_limbs(BigUint::mod(a, modulus_));
  const Limbs b_plain = to_limbs(BigUint::mod(b, modulus_));
  Limbs a_mont;
  mont_mul(a_mont_in, r2_, a_mont);  // a*R mod n
  Limbs product;
  mont_mul(a_mont, b_plain, product);  // a*R*b*R^{-1} = a*b mod n
  return from_limbs(product);
}

BigUint Montgomery::exp(const BigUint& base, const BigUint& exponent) const {
  const Limbs base_plain = to_limbs(BigUint::mod(base, modulus_));
  Limbs base_mont;
  mont_mul(base_plain, r2_, base_mont);

  // one in Montgomery form: R mod n = mont_mul(R^2 mod n, 1).
  Limbs one_plain(k_, 0);
  one_plain[0] = 1;
  Limbs acc;
  mont_mul(r2_, one_plain, acc);

  Limbs tmp;
  const std::size_t bits = exponent.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    mont_mul(acc, acc, tmp);
    acc.swap(tmp);
    if (exponent.bit(i)) {
      mont_mul(acc, base_mont, tmp);
      acc.swap(tmp);
    }
  }
  // Convert out of Montgomery form.
  mont_mul(acc, one_plain, tmp);
  return from_limbs(tmp);
}

}  // namespace lookaside::crypto
