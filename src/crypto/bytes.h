// Shared byte-buffer alias and hex helpers used across the library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lookaside::crypto {

/// The library-wide octet buffer type (wire messages, digests, keys, ...).
using Bytes = std::vector<std::uint8_t>;

/// Lower-case hex encoding of `data`.
[[nodiscard]] std::string to_hex(const Bytes& data);

/// Parses lower/upper-case hex; throws std::invalid_argument on bad input.
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Converts a string's bytes verbatim.
[[nodiscard]] Bytes bytes_of(std::string_view text);

}  // namespace lookaside::crypto
