// SHA-256 (FIPS 180-4), implemented from scratch for the DNSSEC substrate.
//
// Used for RRSIG message digests (RSASHA256-style), DS digests (digest type
// 2), and the privacy-preserving DLV remedy's domain-name hashing.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "crypto/bytes.h"

namespace lookaside::crypto {

/// Incremental SHA-256 context.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();

  /// Absorbs `len` bytes at `data`. May be called repeatedly.
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(std::string_view text) {
    update(reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  }

  /// Finalizes and returns the 32-byte digest. The context must not be
  /// updated afterwards; construct a fresh one for a new message.
  [[nodiscard]] Bytes finish();

  /// One-shot convenience.
  [[nodiscard]] static Bytes digest(const Bytes& data);
  [[nodiscard]] static Bytes digest(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace lookaside::crypto
