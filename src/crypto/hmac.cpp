#include "crypto/hmac.h"

#include "crypto/sha256.h"

namespace lookaside::crypto {

Bytes hmac_sha256(const Bytes& key, const Bytes& message) {
  constexpr std::size_t kBlockSize = 64;
  Bytes block_key = key;
  if (block_key.size() > kBlockSize) block_key = Sha256::digest(block_key);
  block_key.resize(kBlockSize, 0x00);

  Bytes inner_pad(kBlockSize);
  Bytes outer_pad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    inner_pad[i] = block_key[i] ^ 0x36;
    outer_pad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(inner_pad);
  inner.update(message);
  const Bytes inner_digest = inner.finish();

  Sha256 outer;
  outer.update(outer_pad);
  outer.update(inner_digest);
  return outer.finish();
}

}  // namespace lookaside::crypto
