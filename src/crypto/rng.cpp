#include "crypto/rng.h"

namespace lookaside::crypto {

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t label) {
  SplitMix64 mixer(parent ^ (label * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL));
  mixer.next();
  return mixer.next();
}

}  // namespace lookaside::crypto
