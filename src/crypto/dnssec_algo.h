// DNSSEC signing-algorithm façade and the RFC 4034 key-tag computation.
//
// The library supports DNSSEC algorithm 8 (RSA/SHA-256). The façade exists so
// tests can exercise the unknown-algorithm paths a validator must handle.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/bytes.h"
#include "crypto/rsa.h"

namespace lookaside::crypto {

/// DNSSEC algorithm numbers (IANA registry subset).
enum class DnssecAlgorithm : std::uint8_t {
  kRsaSha1 = 5,    // recognized, refused for new signatures
  kRsaSha256 = 8,  // the algorithm this library signs with
};

/// True when this library can validate signatures of `algorithm`.
[[nodiscard]] bool algorithm_supported(std::uint8_t algorithm);

/// Signs `message` (full canonical bytes, not a digest) with RSA/SHA-256.
[[nodiscard]] Bytes sign_message(const RsaPrivateKey& key, const Bytes& message);

/// Verifies an RSA/SHA-256 signature over `message`.
[[nodiscard]] bool verify_message(const RsaPublicKey& key, const Bytes& message,
                                  const Bytes& signature);

/// RFC 4034 Appendix B key tag over a DNSKEY RDATA image.
[[nodiscard]] std::uint16_t key_tag(const Bytes& dnskey_rdata);

}  // namespace lookaside::crypto
