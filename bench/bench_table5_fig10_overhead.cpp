// Reproduces Table 5 and Fig. 10: the overhead of the TXT-record remedy in
// response time (s), traffic volume (MB) and issued queries, as a function
// of workload size.
//
// Paper reference (baseline / overhead / ratio):
//   time:   100: 38.16/7.13/18.68%   1k: 270.3/63.3/23.4%
//           10k: 2,324/572/24.6%     100k: 24,119/7,043/29.2%
//   traffic:100: 0.60/0.04/6.67%     ... 100k: 324.9/32.0/9.83%
//   queries:100: 1,001/108/10.79%    ... 100k: 580,127/114,043/19.66%
//
// Shape to match: latency overhead ~19-29% (largest), traffic ~7-10%,
// queries ~11-20%, all growing with N (cache dynamics).
#include <iostream>

#include "bench_util.h"
#include "core/overhead.h"
#include "metrics/csv.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace lookaside;

  bench::banner("Table 5 / Fig. 10: overhead of the TXT remedy");
  std::cout << "Remedy methodology per the paper: the resolver issues a TXT\n"
               "lookup per original query, but domains do not serve the\n"
               "record yet (no suppression benefit). Set LOOKASIDE_SCALE to\n"
               "cap N.\n\n";

  bench::ObsSession obs_session(bench::ArgParser(argc, argv).obs());

  const std::uint64_t max_n =
      std::min<std::uint64_t>(bench::max_scale(100'000), 100'000);
  const std::vector<std::uint64_t> ladder = bench::n_ladder(max_n);

  metrics::Table table({"#Domains", "Time base (s)", "Time ovh (s)", "Time %",
                        "MB base", "MB ovh", "MB %", "Queries base",
                        "Queries ovh", "Queries %"});
  metrics::CsvWriter csv({"n", "time_base_s", "time_overhead_s", "mb_base",
                          "mb_overhead", "queries_base", "queries_overhead"});

  for (const std::uint64_t n : ladder) {
    core::UniverseExperiment::Options options;
    // Trace only the largest size; the stream then covers the baseline run
    // followed by the remedy run of that row.
    if (n == ladder.back()) options.tracer = obs_session.tracer();
    const core::OverheadRow row =
        core::measure_overhead(n, core::RemedyMode::kTxt, options);
    table.row()
        .cell(n)
        .cell(row.baseline.response_seconds, 2)
        .cell(row.time_overhead(), 2)
        .percent_cell(row.time_ratio())
        .cell(row.baseline.megabytes, 2)
        .cell(row.traffic_overhead(), 2)
        .percent_cell(row.traffic_ratio())
        .cell(row.baseline.queries)
        .cell(row.query_overhead())
        .percent_cell(row.query_ratio());
    csv.add_row({std::to_string(n),
                 metrics::Table::fixed(row.baseline.response_seconds, 3),
                 metrics::Table::fixed(row.time_overhead(), 3),
                 metrics::Table::fixed(row.baseline.megabytes, 3),
                 metrics::Table::fixed(row.traffic_overhead(), 3),
                 std::to_string(row.baseline.queries),
                 std::to_string(row.query_overhead())});
    std::cout << "  [done] N=" << metrics::Table::with_commas(n) << "\n";
    std::cout.flush();
  }

  bench::banner("Table 5 (measured)");
  table.print(std::cout);

  bench::banner("Fig. 10 series (CSV)");
  csv.write(std::cout);

  std::cout << "\nPaper's Table 5: time ratios 18.68%->29.20%, traffic\n"
               "6.67%->9.83%, queries 10.79%->19.66% from 100 to 100k.\n";

  obs_session.finish(std::cout);
  return 0;
}
