// Reproduces §5.2 / Table 3: whether the 45 DNSSEC-secured domains are sent
// to the DLV server under each installer's default configuration, plus the
// DNS-OARC operator survey that frames the practical impact.
//
// Paper reference (Table 3): apt-get No; apt-get† Yes; yum No; manual Yes.
// With a *correct* configuration, exactly the 5 islands of security reach
// the DLV server (and validate through it).
#include <iostream>

#include "bench_util.h"
#include "core/experiment.h"
#include "core/survey.h"
#include "metrics/table.h"
#include "workload/secured45.h"

int main() {
  using namespace lookaside;

  bench::banner("Table 3: secured domains vs. installer defaults");
  std::cout << "45 DNSSEC-secured domains (40 chained to the root, 5 islands\n"
               "of security with DLV deposits), resolved under each default\n"
               "configuration. 'Leaked to DLV' counts distinct domains the\n"
               "registry observed.\n\n";

  struct Case {
    const char* name;
    resolver::ResolverConfig config;
    const char* paper_says;
  };
  const Case cases[] = {
      {"apt-get (default)", resolver::ResolverConfig::bind_apt_get(), "No"},
      {"apt-get+ (user set validation yes)",
       resolver::ResolverConfig::bind_apt_get_dagger(), "Yes"},
      {"yum (default)", resolver::ResolverConfig::bind_yum(), "No*"},
      {"manual (fresh config)", resolver::ResolverConfig::bind_manual(),
       "Yes"},
      {"manual (correct, Fig. 6)",
       resolver::ResolverConfig::bind_manual_correct(), "No*"},
      {"unbound (correct, Fig. 7)",
       resolver::ResolverConfig::unbound_correct(), "No*"},
      {"unbound (package default)",
       resolver::ResolverConfig::unbound_package(), "No"},
  };

  metrics::Table table({"Configuration", "DLV on", "Sent to DLV", "Secure",
                        "Via DLV", "Paper (Table 3)"});
  for (const Case& c : cases) {
    const core::SecuredRunResult result = core::run_secured_45(c.config, c.name);
    table.row()
        .cell(c.name)
        .cell(result.dlv_enabled ? "yes" : "no")
        .cell(result.sent_to_dlv)
        .cell(result.validated_secure)
        .cell(result.validated_via_dlv)
        .cell(c.paper_says);
  }
  table.print(std::cout);
  std::cout << "\n(*) 'No' in the paper's Table 3 means the chained domains\n"
               "do not leak; the paper separately reports that exactly five\n"
               "islands of security were sent to (and validated through)\n"
               "the DLV server when the configuration was correct.\n";

  bench::banner("Sec. 5.2: DNS-OARC 2015 operator survey (56 respondents)");
  metrics::Table practice({"Configuration practice", "Respondents", "Percent"});
  for (const auto& bucket : core::survey_configuration_practice()) {
    practice.row().cell(bucket.label).cell(bucket.respondents).cell(
        metrics::Table::fixed(bucket.percent, 2) + "%");
  }
  practice.print(std::cout);
  std::cout << "\n";
  metrics::Table anchors({"Trust anchor use", "Respondents", "Percent"});
  for (const auto& bucket : core::survey_dlv_anchor_use()) {
    anchors.row().cell(bucket.label).cell(bucket.respondents).cell(
        metrics::Table::fixed(bucket.percent, 2) + "%");
  }
  anchors.print(std::cout);
  return 0;
}
