// Reproduces Fig. 12: trace-driven overhead of the TXT remedy at a large
// recursive resolver (the paper's 7-hour DITL capture: 160k-360k queries
// per minute, 92,705,013 queries total).
//
// Paper reference: cumulative TXT-signaling overhead ~1.2 GB over 7 hours
// (~0.38 Mbps) — small relative to the baseline bytes served.
//
// Flags: --jobs N shards the two calibration runs (baseline, TXT) across
// worker threads; the folded series is byte-identical for any job count.
#include <array>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/ditl_overhead.h"
#include "engine/sweep.h"
#include "metrics/csv.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace lookaside;

  bench::banner("Fig. 12: DITL trace-driven TXT overhead at a recursive");

  // Calibrate per-query byte costs from sampled simulations: one per
  // remedy mode, each an independent experiment, sharded over the engine.
  core::UniverseExperiment::Options options;
  const std::uint64_t sample =
      std::min<std::uint64_t>(bench::max_scale(2'000), 20'000);
  const unsigned jobs = bench::ArgParser(argc, argv).jobs();
  std::cout << "Calibrating per-query byte costs over " << sample
            << " sampled domains...\n";
  const std::array<core::RemedyMode, 2> modes = {core::RemedyMode::kNone,
                                                 core::RemedyMode::kTxt};
  const std::vector<double> bytes_per_query = engine::run_sharded(
      modes.size(), jobs, [&](std::size_t i) {
        return core::measure_bytes_per_stub_query(modes[i], sample, options);
      });
  const core::PerQueryCost cost = core::per_query_cost_from_measurements(
      bytes_per_query[0], bytes_per_query[1]);
  std::cout << "  baseline bytes/stub-query: "
            << metrics::Table::fixed(cost.baseline_bytes, 1)
            << "\n  TXT extra bytes/stub-query: "
            << metrics::Table::fixed(cost.txt_extra_bytes, 1) << "\n";

  workload::DitlOptions trace;  // 7 h, 92,705,013 queries
  const auto series = core::ditl_overhead_series(trace, cost);

  bench::banner("Fig. 12a/12b: per-minute and cumulative query volume");
  metrics::Table volume({"Minute", "Queries/min (12a)", "Cumulative (12b)"});
  for (std::size_t i = 0; i < series.size(); i += 60) {
    volume.row()
        .cell(static_cast<std::uint64_t>(series[i].minute))
        .cell(series[i].queries)
        .cell(series[i].cumulative_queries);
  }
  volume.row()
      .cell(static_cast<std::uint64_t>(series.back().minute))
      .cell(series.back().queries)
      .cell(series.back().cumulative_queries);
  volume.print(std::cout);

  bench::banner("Fig. 12c: cumulative overhead (MB)");
  metrics::Table overhead({"Minute", "Baseline served (MB)",
                           "TXT overhead (MB)"});
  metrics::CsvWriter csv({"minute", "queries", "cum_queries",
                          "cum_baseline_mb", "cum_overhead_mb"});
  for (std::size_t i = 0; i < series.size(); i += 60) {
    overhead.row()
        .cell(static_cast<std::uint64_t>(series[i].minute))
        .cell(series[i].cumulative_baseline_mb, 1)
        .cell(series[i].cumulative_overhead_mb, 1);
  }
  overhead.row()
      .cell(static_cast<std::uint64_t>(series.back().minute))
      .cell(series.back().cumulative_baseline_mb, 1)
      .cell(series.back().cumulative_overhead_mb, 1);
  overhead.print(std::cout);
  for (const auto& minute : series) {
    csv.add_row({std::to_string(minute.minute),
                 std::to_string(minute.queries),
                 std::to_string(minute.cumulative_queries),
                 metrics::Table::fixed(minute.cumulative_baseline_mb, 2),
                 metrics::Table::fixed(minute.cumulative_overhead_mb, 2)});
  }

  const double total_gb = series.back().cumulative_overhead_mb / 1024.0;
  const double mbps = series.back().cumulative_overhead_mb * 8.0 /
                      (static_cast<double>(trace.minutes) * 60.0);
  std::cout << "\nTotals: " << series.back().cumulative_queries
            << " queries over " << trace.minutes / 60 << " h; TXT overhead "
            << metrics::Table::fixed(total_gb, 2) << " GB ("
            << metrics::Table::fixed(mbps, 2)
            << " Mbps). Paper: ~1.2 GB (~0.38 Mbps), small relative to the\n"
               "baseline serving volume.\n";

  bench::banner("Fig. 12 series (CSV, hourly rows elided above)");
  // Print only every 30th minute in CSV to keep output reviewable.
  metrics::CsvWriter sparse({"minute", "queries", "cum_queries",
                             "cum_baseline_mb", "cum_overhead_mb"});
  for (std::size_t i = 0; i < series.size(); i += 30) {
    const auto& m = series[i];
    sparse.add_row({std::to_string(m.minute), std::to_string(m.queries),
                    std::to_string(m.cumulative_queries),
                    metrics::Table::fixed(m.cumulative_baseline_mb, 2),
                    metrics::Table::fixed(m.cumulative_overhead_mb, 2)});
  }
  sparse.write(std::cout);
  return 0;
}
