// Reproduces Table 1 (the 16-environment install matrix with resolver
// versions) and Table 2 (default configuration by installer), plus the
// ARM-compliance audit the paper narrates in §4.3 and §6.3, and a
// measured top-N sweep showing what each shipped default actually does on
// the wire (DLV queries and leaked domains per config).
//
// Flags: --jobs N shards the per-config measurement sweep across worker
// threads; output is byte-identical for any job count. LOOKASIDE_SCALE
// caps the per-config top-N visit count.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "config/install_matrix.h"
#include "core/experiment.h"
#include "engine/sweep.h"
#include "metrics/table.h"

int main(int argc, char** argv) {
  using namespace lookaside;

  bench::banner("Table 1: resolver versions across the 16 environments");
  metrics::Table versions(
      {"Operating System", "BIND (P)", "BIND (M)", "Unbound (P)",
       "Unbound (M)"});
  for (const auto& env : config::install_matrix(/*include_manual=*/false)) {
    if (env.software != config::ResolverSoftware::kBind) continue;
    config::Environment bind_manual = env;
    bind_manual.method = config::InstallMethod::kManual;
    config::Environment unbound = env;
    unbound.software = config::ResolverSoftware::kUnbound;
    config::Environment unbound_manual = unbound;
    unbound_manual.method = config::InstallMethod::kManual;
    versions.row()
        .cell(env.os_name())
        .cell(env.resolver_version())
        .cell(bind_manual.resolver_version())
        .cell(unbound.resolver_version())
        .cell(unbound_manual.resolver_version());
  }
  versions.print(std::cout);

  bench::banner("Table 2: default configuration variations by installer");
  metrics::Table defaults({"Installer", "DNSSEC", "validation", "DLV",
                           "trust anchor", "ARM compliant"});
  for (const auto& row : config::table2_rows()) {
    defaults.row()
        .cell(row.installer)
        .cell(row.dnssec)
        .cell(row.validation)
        .cell(row.dlv)
        .cell(row.trust_anchor)
        .cell(row.arm_compliant ? "yes" : "NO");
  }
  defaults.print(std::cout);

  bench::banner("ARM-compliance audit of shipped defaults (Secs. 4.3, 6.3)");
  metrics::Table audit({"Environment", "Installer", "Option", "Shipped",
                        "ARM documents"});
  for (const auto& env : config::install_matrix(/*include_manual=*/false)) {
    if (env.software != config::ResolverSoftware::kBind) continue;
    for (const auto& issue : config::check_arm_compliance(env.default_config())) {
      audit.row()
          .cell(env.os_name())
          .cell(env.installer_name())
          .cell(issue.option)
          .cell(issue.shipped)
          .cell(issue.documented);
    }
  }
  audit.print(std::cout);
  std::cout << "\nEffective behavior of each default (who leaks):\n\n";
  metrics::Table behavior({"Installer default", "validation", "root anchor",
                           "DLV enabled", "leak class"});
  struct Row {
    const char* name;
    resolver::ResolverConfig config;
  };
  const Row rows[] = {
      {"BIND via apt-get", resolver::ResolverConfig::bind_apt_get()},
      {"BIND via yum", resolver::ResolverConfig::bind_yum()},
      {"BIND manual", resolver::ResolverConfig::bind_manual()},
      {"Unbound package", resolver::ResolverConfig::unbound_package()},
      {"Unbound manual", resolver::ResolverConfig::unbound_manual()},
  };
  for (const Row& row : rows) {
    const char* leak_class = "no DLV traffic";
    if (row.config.dlv_enabled()) {
      leak_class = row.config.root_anchor_available()
                       ? "Case-2 leak for unsigned domains"
                       : "EVERY domain leaks (anchor missing)";
    }
    behavior.row()
        .cell(row.name)
        .cell(row.config.validation_enabled()
                  ? (row.config.dnssec_validation ==
                             resolver::ValidationMode::kAuto
                         ? "auto"
                         : "yes")
                  : "no")
        .cell(row.config.root_anchor_available() ? "usable" : "missing")
        .cell(row.config.dlv_enabled() ? "yes" : "no")
        .cell(leak_class);
  }
  behavior.print(std::cout);

  bench::banner("Measured behavior: top-N visit under each shipped default");
  const std::uint64_t n = std::min<std::uint64_t>(bench::max_scale(1'000),
                                                  10'000);
  std::cout << "Each installer default drives a private 10k-domain universe\n"
               "through the top-" << n << " workload; the classification\n"
               "above is checked against what actually reaches the DLV\n"
               "registry. Set LOOKASIDE_SCALE to cap N; --jobs N shards the\n"
               "configs across worker threads.\n\n";
  const std::size_t config_count = std::size(rows);
  const std::vector<core::LeakageReport> reports = engine::run_sharded(
      config_count, bench::ArgParser(argc, argv).jobs(), [&](std::size_t i) {
        core::UniverseExperiment::Options options;
        options.universe_size = 10'000;
        options.resolver_config = rows[i].config;
        core::UniverseExperiment experiment(options);
        return experiment.run_topn(n);
      });
  metrics::Table measured({"Installer default", "DLV queries", "Case-1",
                           "Leaked", "Leaked %"});
  for (std::size_t i = 0; i < config_count; ++i) {
    measured.row()
        .cell(rows[i].name)
        .cell(reports[i].dlv_queries)
        .cell(reports[i].distinct_case1_domains)
        .cell(reports[i].distinct_leaked_domains)
        .percent_cell(reports[i].leaked_proportion());
  }
  measured.print(std::cout);
  return 0;
}
