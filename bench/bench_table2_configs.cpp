// Reproduces Table 1 (the 16-environment install matrix with resolver
// versions) and Table 2 (default configuration by installer), plus the
// ARM-compliance audit the paper narrates in §4.3 and §6.3.
#include <iostream>

#include "bench_util.h"
#include "config/install_matrix.h"
#include "metrics/table.h"

int main() {
  using namespace lookaside;

  bench::banner("Table 1: resolver versions across the 16 environments");
  metrics::Table versions(
      {"Operating System", "BIND (P)", "BIND (M)", "Unbound (P)",
       "Unbound (M)"});
  for (const auto& env : config::install_matrix(/*include_manual=*/false)) {
    if (env.software != config::ResolverSoftware::kBind) continue;
    config::Environment bind_manual = env;
    bind_manual.method = config::InstallMethod::kManual;
    config::Environment unbound = env;
    unbound.software = config::ResolverSoftware::kUnbound;
    config::Environment unbound_manual = unbound;
    unbound_manual.method = config::InstallMethod::kManual;
    versions.row()
        .cell(env.os_name())
        .cell(env.resolver_version())
        .cell(bind_manual.resolver_version())
        .cell(unbound.resolver_version())
        .cell(unbound_manual.resolver_version());
  }
  versions.print(std::cout);

  bench::banner("Table 2: default configuration variations by installer");
  metrics::Table defaults({"Installer", "DNSSEC", "validation", "DLV",
                           "trust anchor", "ARM compliant"});
  for (const auto& row : config::table2_rows()) {
    defaults.row()
        .cell(row.installer)
        .cell(row.dnssec)
        .cell(row.validation)
        .cell(row.dlv)
        .cell(row.trust_anchor)
        .cell(row.arm_compliant ? "yes" : "NO");
  }
  defaults.print(std::cout);

  bench::banner("ARM-compliance audit of shipped defaults (Secs. 4.3, 6.3)");
  metrics::Table audit({"Environment", "Installer", "Option", "Shipped",
                        "ARM documents"});
  for (const auto& env : config::install_matrix(/*include_manual=*/false)) {
    if (env.software != config::ResolverSoftware::kBind) continue;
    for (const auto& issue : config::check_arm_compliance(env.default_config())) {
      audit.row()
          .cell(env.os_name())
          .cell(env.installer_name())
          .cell(issue.option)
          .cell(issue.shipped)
          .cell(issue.documented);
    }
  }
  audit.print(std::cout);
  std::cout << "\nEffective behavior of each default (who leaks):\n\n";
  metrics::Table behavior({"Installer default", "validation", "root anchor",
                           "DLV enabled", "leak class"});
  struct Row {
    const char* name;
    resolver::ResolverConfig config;
  };
  const Row rows[] = {
      {"BIND via apt-get", resolver::ResolverConfig::bind_apt_get()},
      {"BIND via yum", resolver::ResolverConfig::bind_yum()},
      {"BIND manual", resolver::ResolverConfig::bind_manual()},
      {"Unbound package", resolver::ResolverConfig::unbound_package()},
      {"Unbound manual", resolver::ResolverConfig::unbound_manual()},
  };
  for (const Row& row : rows) {
    const char* leak_class = "no DLV traffic";
    if (row.config.dlv_enabled()) {
      leak_class = row.config.root_anchor_available()
                       ? "Case-2 leak for unsigned domains"
                       : "EVERY domain leaks (anchor missing)";
    }
    behavior.row()
        .cell(row.name)
        .cell(row.config.validation_enabled()
                  ? (row.config.dnssec_validation ==
                             resolver::ValidationMode::kAuto
                         ? "auto"
                         : "yes")
                  : "no")
        .cell(row.config.root_anchor_available() ? "usable" : "missing")
        .cell(row.config.dlv_enabled() ? "yes" : "no")
        .cell(leak_class);
  }
  behavior.print(std::cout);
  return 0;
}
