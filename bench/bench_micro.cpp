// Micro-benchmarks (google-benchmark) for the substrate hot paths: hashing,
// RSA, name canonicalization, the wire codec, caches, and full resolutions.
// Not a paper artifact — these guard the simulator's own performance.
#include <benchmark/benchmark.h>

#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/verify_batch.h"
#include "dns/name_arena.h"
#include "dlv/registry.h"
#include "dns/codec.h"
#include "resolver/cache.h"
#include "resolver/resolver.h"
#include "server/testbed.h"
#include "workload/stub.h"
#include "workload/universe_world.h"

namespace {

using namespace lookaside;

void BM_Sha256_1KiB(benchmark::State& state) {
  const crypto::Bytes data(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_RsaSign256(benchmark::State& state) {
  crypto::SplitMix64 rng(1);
  const auto kp = crypto::generate_rsa_keypair(256, rng);
  const auto digest = crypto::Sha256::digest("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.private_key.sign_digest(digest));
  }
}
BENCHMARK(BM_RsaSign256);

void BM_RsaVerify256(benchmark::State& state) {
  crypto::SplitMix64 rng(1);
  const auto kp = crypto::generate_rsa_keypair(256, rng);
  const auto digest = crypto::Sha256::digest("bench");
  const auto sig = kp.private_key.sign_digest(digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.public_key.verify_digest(digest, sig));
  }
}
BENCHMARK(BM_RsaVerify256);

void BM_RsaSign512(benchmark::State& state) {
  crypto::SplitMix64 rng(1);
  const auto kp = crypto::generate_rsa_keypair(512, rng);
  const auto digest = crypto::Sha256::digest("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.private_key.sign_digest(digest));
  }
}
BENCHMARK(BM_RsaSign512);

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Name::parse("www.some-domain-name.example.com"));
  }
}
BENCHMARK(BM_NameParse);

void BM_NameCanonicalCompare(benchmark::State& state) {
  const dns::Name a = dns::Name::parse("alpha.example.com.dlv.isc.org");
  const dns::Name b = dns::Name::parse("omega.example.net.dlv.isc.org");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.canonical_compare(b));
  }
}
BENCHMARK(BM_NameCanonicalCompare);

dns::Message sample_response() {
  dns::Message message = dns::Message::make_response(dns::Message::make_query(
      1, dns::Name::parse("example.com"), dns::RRType::kA, true, true));
  const dns::Name owner = dns::Name::parse("example.com");
  message.answers.push_back(
      dns::ResourceRecord::make(owner, 300, dns::ARdata{0x01020304}));
  dns::RrsigRdata sig;
  sig.type_covered = dns::RRType::kA;
  sig.signer = owner;
  sig.signature = dns::Bytes(32, 0x55);
  message.answers.push_back(dns::ResourceRecord::make(owner, 300, sig));
  message.authorities.push_back(dns::ResourceRecord::make(
      owner, 3600, dns::NsRdata{dns::Name::parse("ns1.example.com")}));
  return message;
}

void BM_MessageEncode(benchmark::State& state) {
  const dns::Message message = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode_message(message));
  }
}
BENCHMARK(BM_MessageEncode);

void BM_MessageDecode(benchmark::State& state) {
  const dns::Bytes wire = dns::encode_message(sample_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode_message(wire));
  }
}
BENCHMARK(BM_MessageDecode);

void BM_NameHash(benchmark::State& state) {
  // The hash is memoized at construction; this measures the probe-time
  // cost cache lookups actually pay (a field read, not an FNV pass).
  const dns::Name name = dns::Name::parse("www.some-domain-name.example.com");
  for (auto _ : state) {
    benchmark::DoNotOptimize(name.hash());
  }
}
BENCHMARK(BM_NameHash);

void BM_NameIntern(benchmark::State& state) {
  // Steady-state intern: every name is already in the arena, so this is
  // the dedup path (one retuned-map probe + an id return) that store_nsec
  // and rrsig_for pay per repeated owner.
  dns::NameArena arena;
  std::vector<dns::Name> names;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    names.push_back(
        dns::Name::parse("host" + std::to_string(i) + ".example.com"));
    (void)arena.intern(names.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.intern(names[i]));
    i = (i + 1) % names.size();
  }
}
BENCHMARK(BM_NameIntern)->Arg(100)->Arg(10000);

void BM_ProbeHit_arena(benchmark::State& state) {
  // The bare retuned NameHashMap probe (control-byte prefilter + one Slot
  // load), measured through the arena's find(): no cache sections, no TTL
  // checks — the floor the <30ns probe-hit target is judged against.
  dns::NameArena arena;
  std::vector<dns::Name> names;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    names.push_back(
        dns::Name::parse("host" + std::to_string(i) + ".example.com"));
    (void)arena.intern(names.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(arena.find(names[i]));
    i = (i + 1) % names.size();
  }
}
BENCHMARK(BM_ProbeHit_arena)->Arg(100)->Arg(10000);

void BM_RsaBatch(benchmark::State& state) {
  // A deduped verification: the batch memo hit that replaces a full RSA
  // verify when the same (signed data, signature, key) repeats within one
  // resolve step. Compare against BM_RsaVerify256 for the per-repeat win.
  crypto::VerifyBatch batch;
  crypto::VerifyBatchScope scope(batch);
  for (std::uint64_t k = 0; k < 64; ++k) batch.record(k * 0x9E3779B97F4A7C15ULL, true);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch.lookup(k * 0x9E3779B97F4A7C15ULL));
    k = (k + 1) % 64;
  }
}
BENCHMARK(BM_RsaBatch);

void BM_CacheProbe_Hit(benchmark::State& state) {
  sim::SimClock clock;
  resolver::ResolverCache cache(clock);
  std::vector<dns::Name> names;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    names.push_back(dns::Name::parse("host" + std::to_string(i) + ".example.com"));
    dns::RRset rrset(names.back(), dns::RRType::kA);
    rrset.add(dns::ResourceRecord::make(names.back(), 3600,
                                        dns::ARdata{0x01020304}));
    cache.store(rrset, /*validated=*/false);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find(names[i], dns::RRType::kA));
    i = (i + 1) % names.size();
  }
}
BENCHMARK(BM_CacheProbe_Hit)->Arg(100)->Arg(10000);

void BM_CacheProbe_NegativeNsecCover(benchmark::State& state) {
  // One hash probe to the zone chain, then an ordered predecessor query:
  // the fast path the aggressive NSEC cache takes for every suppressed
  // DLV query once the chain is warm.
  sim::SimClock clock;
  resolver::ResolverCache cache(clock);
  const dns::Name apex = dns::Name::parse("dlv.isc.org");
  std::vector<dns::Name> probes;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    dns::NsecRdata nsec;
    nsec.next = dns::Name::parse("d" + std::to_string(i) + "b.com.dlv.isc.org");
    nsec.types = {dns::RRType::kDlv};
    cache.store_nsec(apex, dns::ResourceRecord::make(
                               dns::Name::parse("d" + std::to_string(i) +
                                                "a.com.dlv.isc.org"),
                               3600, nsec));
    probes.push_back(
        dns::Name::parse("d" + std::to_string(i) + "ax.com.dlv.isc.org"));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find_denial(apex, probes[i],
                                               dns::RRType::kDlv,
                                               resolver::DenialSources::kSpans));
    i = (i + 1) % probes.size();
  }
}
BENCHMARK(BM_CacheProbe_NegativeNsecCover)->Arg(100)->Arg(10000);

void BM_CacheProbe_SpanIndexSynth(benchmark::State& state) {
  // The unified DenialProofSource probe with every source enabled: one
  // negative-table miss, one span-index binary search, one (empty) NSEC3
  // evidence probe. This is the per-query cost fetch_from_cache pays when
  // aggressive_synthesis is on.
  sim::SimClock clock;
  resolver::ResolverCache cache(clock);
  const dns::Name apex = dns::Name::parse("dlv.isc.org");
  std::vector<dns::Name> probes;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    dns::NsecRdata nsec;
    nsec.next = dns::Name::parse("d" + std::to_string(i) + "b.com.dlv.isc.org");
    nsec.types = {dns::RRType::kDlv};
    cache.store_nsec(apex, dns::ResourceRecord::make(
                               dns::Name::parse("d" + std::to_string(i) +
                                                "a.com.dlv.isc.org"),
                               3600, nsec));
    probes.push_back(
        dns::Name::parse("d" + std::to_string(i) + "ax.com.dlv.isc.org"));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find_denial(apex, probes[i],
                                               dns::RRType::kDlv));
    i = (i + 1) % probes.size();
  }
}
BENCHMARK(BM_CacheProbe_SpanIndexSynth)->Arg(100)->Arg(10000);

void BM_CacheNsecCheck(benchmark::State& state) {
  sim::SimClock clock;
  resolver::ResolverCache cache(clock);
  const dns::Name apex = dns::Name::parse("dlv.isc.org");
  // Populate a chain with `range(0)` entries.
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    dns::NsecRdata nsec;
    nsec.next = dns::Name::parse("d" + std::to_string(i) + "b.com.dlv.isc.org");
    nsec.types = {dns::RRType::kDlv};
    cache.store_nsec(apex, dns::ResourceRecord::make(
                               dns::Name::parse("d" + std::to_string(i) +
                                                "a.com.dlv.isc.org"),
                               3600, nsec));
  }
  const dns::Name probe = dns::Name::parse("d500x.com.dlv.isc.org");
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find_denial(
        apex, probe, dns::RRType::kDlv, resolver::DenialSources::kSpans));
  }
}
BENCHMARK(BM_CacheNsecCheck)->Arg(100)->Arg(10000);

void BM_FullResolutionUncached(benchmark::State& state) {
  workload::WorldOptions world_options;
  world_options.universe.size = 1'000'000;
  workload::UniverseWorld world(world_options);
  sim::SimClock clock;
  sim::Network network(clock);
  world.registry().set_store_observations(false);
  resolver::RecursiveResolver resolver(
      network, world.directory(), resolver::ResolverConfig::bind_yum());
  resolver.set_root_trust_anchor(world.root_trust_anchor());
  resolver.set_dlv_trust_anchor(world.registry().trust_anchor());
  std::uint64_t rank = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve({world.universe().domain_at(rank), dns::RRType::kA}));
    rank = rank % 900'000 + 1;
  }
}
BENCHMARK(BM_FullResolutionUncached)->Unit(benchmark::kMicrosecond);

void BM_StubVisitWarmCaches(benchmark::State& state) {
  workload::WorldOptions world_options;
  world_options.universe.size = 100'000;
  workload::UniverseWorld world(world_options);
  sim::SimClock clock;
  sim::Network network(clock);
  world.registry().set_store_observations(false);
  resolver::RecursiveResolver resolver(
      network, world.directory(), resolver::ResolverConfig::bind_yum());
  resolver.set_root_trust_anchor(world.root_trust_anchor());
  resolver.set_dlv_trust_anchor(world.registry().trust_anchor());
  workload::StubClient stub(network, resolver);
  (void)stub.visit(world.universe().domain_at(42));  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.visit(world.universe().domain_at(42)));
  }
}
BENCHMARK(BM_StubVisitWarmCaches)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
