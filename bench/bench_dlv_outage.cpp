// §8.4 DLV-outage chaos study: what happens to an ordinary browsing
// workload when the look-aside registry degrades or dies.
//
// The paper's availability argument (§8.4) is that DLV adds a *third party
// dependency* to every resolution: when dlv.isc.org is unreachable, a
// DLV-enabled resolver either stalls queries behind its retransmission
// schedule or degrades to insecure answers. This driver injects seeded
// packet loss at the DLV registry endpoint only — the rest of the hierarchy
// stays healthy — and sweeps loss rate x retry policy, reporting:
//   - success rate (NOERROR answers at the stub),
//   - added latency per visited domain vs. the loss-free baseline,
//   - extra query volume (retransmissions) vs. the baseline,
//   - retries, DLV timeouts and dead-server holddowns.
// At 100% loss the added latency of the first resolution is exactly the
// retry schedule's closed-form total (RetryPolicy::total_wait_us), printed
// alongside for comparison; after the registry is marked dead, later
// resolutions skip it for free until the holddown lapses.
//
// Flags: --smoke (tiny run for CI / sanitizer jobs), --must-be-secure
// (strict policy: unreachable registry => SERVFAIL instead of insecure),
// --jobs N (shard the loss x policy grid across worker threads; output is
// byte-identical for any job count), plus the shared observability flags
// from bench_util.h.
#include <iostream>
#include <memory>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "engine/sweep.h"
#include "metrics/csv.h"
#include "metrics/table.h"
#include "sim/fault.h"

namespace {

struct PolicyUnderTest {
  const char* name;
  lookaside::resolver::RetryPolicy policy;
};

struct CellResult {
  double success_rate = 0;
  double seconds = 0;
  std::uint64_t queries = 0;
  std::uint64_t retries = 0;
  std::uint64_t dlv_timeouts = 0;
  std::uint64_t marked_dead = 0;
};

CellResult run_cell(std::uint64_t n, double loss,
                    const lookaside::resolver::RetryPolicy& policy,
                    bool must_be_secure, lookaside::obs::Tracer* tracer) {
  using namespace lookaside;

  core::UniverseExperiment::Options options;
  options.universe_size = std::max<std::uint64_t>(n, 10'000);
  options.resolver_config = resolver::ResolverConfig::bind_yum();
  options.resolver_config.dlv_retry = policy;
  options.resolver_config.dlv_must_be_secure = must_be_secure;
  options.tracer = tracer;
  core::UniverseExperiment experiment(options);

  if (loss > 0) {
    sim::FaultPlan plan;
    plan.seed = 0x84D1u ^ static_cast<std::uint64_t>(loss * 1000);
    sim::FaultSpec spec;
    spec.endpoint = experiment.world().registry().endpoint_id();
    spec.loss = loss;
    plan.add(spec);
    experiment.network().set_fault_plan(std::move(plan));
  }

  CellResult cell;
  std::uint64_t ok = 0;
  for (std::uint64_t rank = 1; rank <= n; ++rank) {
    const workload::VisitOutcome outcome =
        experiment.stub().visit(experiment.world().universe().domain_at(rank));
    if (outcome.rcode == dns::RCode::kNoError) ++ok;
  }
  cell.success_rate = n == 0 ? 0 : static_cast<double>(ok) / n;
  cell.seconds = experiment.clock().now_seconds();
  cell.queries = experiment.network().counters().value("packets.query");
  cell.retries = experiment.network().counters().value("retries");
  cell.dlv_timeouts = experiment.resolver().stats().value("dlv.timeout");
  cell.marked_dead =
      experiment.resolver().stats().value("servers.marked_dead");
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lookaside;

  const bench::ArgParser args(argc, argv, {"must-be-secure"});
  const bool smoke = args.smoke();
  const bool must_be_secure = args.flag("must-be-secure");

  bench::banner("§8.4 DLV-outage chaos study: loss rate x retry policy");
  std::cout << "Fault model: seeded packet loss on the DLV registry endpoint\n"
               "only; every other server stays healthy. Policy '"
            << (must_be_secure ? "must-be-secure" : "degrade-to-insecure")
            << "' (see --must-be-secure). Set LOOKASIDE_SCALE to cap N.\n";

  bench::ObsSession obs_session(args.obs());

  const std::uint64_t n =
      smoke ? 150 : bench::max_scale(2'000);
  const std::vector<double> losses =
      smoke ? std::vector<double>{0.0, 0.50, 1.0}
            : std::vector<double>{0.0, 0.01, 0.05, 0.10, 0.50, 1.0};

  resolver::RetryPolicy unbound_like;
  unbound_like.max_retries = 3;
  unbound_like.initial_rto_us = 376'000;
  const std::vector<PolicyUnderTest> policies = {
      {"fire-once", resolver::RetryPolicy::none()},
      {"bind-800ms-x2", resolver::RetryPolicy{}},
      {"unbound-376ms-x3", unbound_like},
  };

  std::cout << "\nRetry schedules (closed-form worst case per dead server):\n";
  for (const PolicyUnderTest& p : policies) {
    std::cout << "  " << p.name << ": " << p.policy.max_retries
              << " retries, total wait "
              << metrics::Table::fixed(
                     static_cast<double>(p.policy.total_wait_us()) / 1e6, 3)
              << " s\n";
  }

  metrics::Table table({"Policy", "DLV loss %", "Success %", "Added s/domain",
                        "Extra queries", "Retries", "DLV timeouts",
                        "Marked dead"});
  metrics::CsvWriter csv({"policy", "loss_pct", "success_pct",
                          "added_seconds_per_domain", "extra_queries",
                          "retries", "dlv_timeouts", "marked_dead"});

  // Canonical grid order: policy-major, loss-minor. Every cell is an
  // independent experiment, so the whole grid shards across the engine;
  // the worst cell of the last policy is the primary shard (it carries the
  // stream sinks, as the serial driver traced exactly that cell).
  struct GridCell {
    CellResult result;
    std::unique_ptr<bench::ShardObs> obs;
  };
  const std::size_t grid_size = policies.size() * losses.size();
  const unsigned jobs = args.jobs();
  std::vector<GridCell> grid = engine::run_sharded(
      grid_size, jobs, [&](std::size_t index) {
        const PolicyUnderTest& p = policies[index / losses.size()];
        const double loss = losses[index % losses.size()];
        GridCell cell;
        cell.obs = std::make_unique<bench::ShardObs>(
            obs_session, /*primary=*/index + 1 == grid_size);
        cell.result =
            run_cell(n, loss, p.policy, must_be_secure, cell.obs->tracer());
        return cell;
      });

  for (std::size_t index = 0; index < grid.size(); ++index) {
    const PolicyUnderTest& p = policies[index / losses.size()];
    const double loss = losses[index % losses.size()];
    const CellResult& cell = grid[index].result;
    grid[index].obs->merge_into(obs_session);
    // The loss-free cell of each policy leads its row block in canonical
    // order, so the baseline is always merged before its dependents.
    const CellResult& baseline =
        grid[(index / losses.size()) * losses.size()].result;
    const double added_per_domain =
        (cell.seconds - baseline.seconds) / static_cast<double>(n);
    const std::uint64_t extra_queries =
        cell.queries > baseline.queries ? cell.queries - baseline.queries : 0;
    table.row()
        .cell(p.name)
        .cell(metrics::Table::fixed(loss * 100, 0))
        .cell(metrics::Table::fixed(cell.success_rate * 100, 1))
        .cell(metrics::Table::fixed(added_per_domain, 4))
        .cell(extra_queries)
        .cell(cell.retries)
        .cell(cell.dlv_timeouts)
        .cell(cell.marked_dead);
    csv.add_row({p.name, metrics::Table::fixed(loss * 100, 0),
                 metrics::Table::fixed(cell.success_rate * 100, 2),
                 metrics::Table::fixed(added_per_domain, 6),
                 std::to_string(extra_queries), std::to_string(cell.retries),
                 std::to_string(cell.dlv_timeouts),
                 std::to_string(cell.marked_dead)});
    std::cout << "  [done] " << p.name << " loss="
              << metrics::Table::fixed(loss * 100, 0) << "% success="
              << metrics::Table::fixed(cell.success_rate * 100, 1) << "%\n";
    std::cout.flush();
  }

  bench::banner("§8.4 sweep (final table)");
  table.print(std::cout);

  bench::banner("§8.4 series (CSV)");
  csv.write(std::cout);

  std::cout << "\nReading: at 100% loss a degrade-to-insecure resolver keeps\n"
               "answering (success stays high; answers lose the AD bit) and\n"
               "pays the retry schedule once per holddown window; with\n"
               "--must-be-secure the same outage turns into SERVFAIL — the\n"
               "availability cost of trusting a look-aside third party.\n"
               "A negative added-latency cell means the holddown won: once\n"
               "the registry is marked dead its queries are skipped for\n"
               "free, which is cheaper than the healthy baseline's actual\n"
               "DLV round trips.\n";

  obs_session.finish(std::cout);
  return 0;
}
