// Multi-client serving throughput through the coalescing frontend
// (DESIGN.md §4e), with the sequential reference model as a built-in
// falsifier: for every cell the coalesced run must leak *exactly* the
// Case-2 set the one-resolve-per-query reference leaks, or the bench
// exits nonzero.
//
// The grid holds the aggregate arrival rate constant (mean client gap
// grows with the client count) so every cell is drop-free: admission
// control never sheds, which is the precondition for the leak-identity
// contract. All reported figures are virtual-time quantities — QPS and
// latency percentiles come off the simulated clock — so BENCH_serve.json
// is byte-identical for any --jobs value (the shard grid merges in index
// order and the JSON deliberately carries no jobs/hardware field).
//
// Flags: --jobs N (shard the cells across worker threads), --smoke
// (smaller cells for CI), --out=PATH (default BENCH_serve.json).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/sweep.h"
#include "metrics/table.h"
#include "serve/scenario.h"

namespace {

using namespace lookaside;

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

/// One grid cell: a client count served through a fresh world, plus the
/// sequential reference replay of the identical schedule.
struct CellResult {
  std::uint32_t clients = 0;
  std::uint64_t queries = 0;
  serve::ScenarioSummary coalesced;
  serve::ScenarioSummary reference;
  bool leak_identity = false;
};

serve::ScenarioOptions cell_options(std::uint32_t clients, bool smoke,
                                    std::size_t index) {
  serve::ScenarioOptions options;
  options.universe_size = smoke ? 2'000 : 10'000;
  options.seed = 7 + index;  // pure function of the cell index
  options.mix.clients = clients;
  options.mix.queries_per_client = smoke ? 20 : 64;
  options.mix.seed = 23 + index;
  options.mix.zipf_support = smoke ? 300 : 1'000;
  // Drop-free sizing (Little's law): one uncached resolution occupies the
  // frontend for ~200 virtual ms, so the aggregate gap is held at 25 ms
  // per client and the expected in-flight depth stays near 8 — far below
  // the admission limit of 128. Shedding would void the identity check.
  options.mix.mean_gap_us = 25'000ULL * clients;
  return options;
}

CellResult run_cell(std::uint32_t clients, bool smoke, std::size_t index,
                    obs::Tracer* tracer) {
  CellResult cell;
  cell.clients = clients;
  cell.queries = static_cast<std::uint64_t>(clients) *
                 cell_options(clients, smoke, index).mix.queries_per_client;
  // Only the coalesced run is traced. The sequential reference replays the
  // same schedule against its own fresh world; tracing it too would feed
  // every leak into the ledger twice and the ledger==registry identity
  // below would be off by exactly 2x.
  serve::ScenarioOptions coalesced_options = cell_options(clients, smoke, index);
  coalesced_options.tracer = tracer;
  serve::ServeScenario coalesced(coalesced_options);
  cell.coalesced = coalesced.run();
  serve::ServeScenario reference(cell_options(clients, smoke, index));
  cell.reference = reference.run_sequential_reference();
  cell.leak_identity =
      cell.coalesced.case2_total == cell.reference.case2_total &&
      cell.coalesced.leaked_domains == cell.reference.leaked_domains;
  return cell;
}

std::string cell_json(const CellResult& cell, std::uint64_t ledger_case2,
                      const std::string& causes_json, bool ledger_ok) {
  std::string out = "    {\"clients\": " + std::to_string(cell.clients) +
                    ", \"queries\": " + std::to_string(cell.queries) +
                    ",\n     \"qps\": " + fixed(cell.coalesced.qps, 2) +
                    ", \"p50_ms\": " + fixed(cell.coalesced.p50_ms, 3) +
                    ", \"p99_ms\": " + fixed(cell.coalesced.p99_ms, 3) +
                    ",\n     \"coalesce_rate\": " +
                    fixed(cell.coalesced.coalesce_rate(), 4) +
                    ", \"coalesce_hits\": " +
                    std::to_string(cell.coalesced.coalesce_hits) +
                    ", \"overload_drops\": " +
                    std::to_string(cell.coalesced.overload_drops) +
                    ", \"max_queue_depth\": " +
                    std::to_string(cell.coalesced.max_queue_depth) +
                    ",\n     \"case2_total\": " +
                    std::to_string(cell.coalesced.case2_total) +
                    ", \"distinct_leaked\": " +
                    std::to_string(cell.coalesced.distinct_leaked) +
                    ",\n     \"case2_per_client\": [";
  for (std::size_t i = 0; i < cell.coalesced.case2_per_client.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(cell.coalesced.case2_per_client[i]);
  }
  out += "],\n     \"reference\": {\"case2_total\": " +
         std::to_string(cell.reference.case2_total) +
         ", \"distinct_leaked\": " +
         std::to_string(cell.reference.distinct_leaked) +
         "},\n     \"ledger\": {\"case2\": " + std::to_string(ledger_case2) +
         ", \"causes\": " + causes_json +
         ", \"chains_ok\": " + (ledger_ok ? "true" : "false") +
         "},\n     \"leak_identity\": " +
         (cell.leak_identity ? "true" : "false") + "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lookaside;

  const bench::ArgParser args(argc, argv);
  const bool smoke = args.smoke();
  const std::string out_path = args.out("BENCH_serve.json");
  const unsigned jobs = args.jobs();

  bench::banner("Serving throughput: coalescing frontend vs. sequential");
  std::cout << "Each cell serves a ClientMix schedule (shared Zipf head, per\n"
               "client arrival streams) through the coalescing frontend,\n"
               "then replays the identical schedule one-resolve-per-query\n"
               "through a fresh identical world. Case-2 leak totals and the\n"
               "leaked-domain sets must match exactly; --jobs N shards the\n"
               "cells, --smoke shrinks them for CI.\n";

  const std::vector<std::uint32_t> client_grid =
      smoke ? std::vector<std::uint32_t>{2, 4}
            : std::vector<std::uint32_t>{4, 8, 16};

  bench::ObsSession obs_session(args.obs());
  // The ledger is always on: BENCH_serve.json carries the per-cause Case-2
  // breakdown, and the trace-derived ledger must equal the registry-side
  // count per cell (a second falsifier next to the sequential reference).
  obs_session.enable_ledger();

  struct GridCell {
    CellResult result;
    std::unique_ptr<bench::ShardObs> obs;
  };
  std::vector<GridCell> cells = engine::run_sharded(
      client_grid.size(), jobs, [&](std::size_t i) {
        GridCell cell;
        cell.obs = std::make_unique<bench::ShardObs>(obs_session,
                                                     /*primary=*/i == 0);
        cell.result = run_cell(client_grid[i], smoke, i, cell.obs->tracer());
        return cell;
      });

  metrics::Table table({"Clients", "Queries", "QPS(virt)", "p50 ms", "p99 ms",
                        "Coalesce", "Drops", "Case-2", "Leak identity"});
  std::uint64_t total_hits = 0;
  bool all_identical = true;
  bool ledger_ok = true;
  std::vector<std::string> cell_jsons;
  for (GridCell& grid_cell : cells) {
    const CellResult& cell = grid_cell.result;

    // Trace-side acceptance: ledger total equals the registry-side Case-2
    // count, and every record's query_id resolves to a complete
    // frontend -> resolver -> DLV span chain.
    const obs::LeakLedger* ledger = grid_cell.obs->ledger();
    const obs::SpanTimeline* timeline = grid_cell.obs->timeline();
    const std::uint64_t ledger_case2 =
        ledger == nullptr ? 0 : ledger->case2_total();
    bool cell_ledger_ok = true;
    if (ledger_case2 != cell.coalesced.case2_total) {
      std::cout << "[serve] FAIL: clients=" << cell.clients << " ledger saw "
                << ledger_case2 << " Case-2 records, registry saw "
                << cell.coalesced.case2_total << "\n";
      cell_ledger_ok = false;
    }
    const std::size_t broken =
        ledger == nullptr ? 0
        : timeline == nullptr
            ? ledger->records().size()
            : obs::broken_leak_chains(*timeline, ledger->records());
    if (broken != 0) {
      std::cout << "[serve] FAIL: clients=" << cell.clients << " " << broken
                << " ledger records lack a complete query->resolver->DLV "
                   "chain\n";
      cell_ledger_ok = false;
    }
    std::string causes_json = "{";
    if (ledger != nullptr) {
      bool first = true;
      for (const auto& [cause, count] : ledger->cause_totals()) {
        if (!first) causes_json += ", ";
        first = false;
        causes_json += "\"" + cause + "\": " + std::to_string(count);
      }
    }
    causes_json += "}";
    ledger_ok = ledger_ok && cell_ledger_ok;
    grid_cell.obs->merge_into(obs_session);

    total_hits += cell.coalesced.coalesce_hits;
    all_identical = all_identical && cell.leak_identity;
    table.row()
        .cell(std::to_string(cell.clients))
        .cell(std::to_string(cell.queries))
        .cell(fixed(cell.coalesced.qps, 1))
        .cell(fixed(cell.coalesced.p50_ms, 1))
        .cell(fixed(cell.coalesced.p99_ms, 1))
        .cell(fixed(100.0 * cell.coalesced.coalesce_rate(), 1) + "%")
        .cell(std::to_string(cell.coalesced.overload_drops))
        .cell(std::to_string(cell.coalesced.case2_total))
        .cell(cell.leak_identity ? "ok" : "MISMATCH");
    cell_jsons.push_back(
        cell_json(cell, ledger_case2, causes_json, cell_ledger_ok));
  }
  table.print(std::cout);

  std::string json = "{\n  \"schema\": \"lookaside.bench_serve.v2\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"cells\": [\n";
  for (std::size_t i = 0; i < cell_jsons.size(); ++i) {
    json += cell_jsons[i];
    json += (i + 1 < cell_jsons.size()) ? ",\n" : "\n";
  }
  json += "  ],\n  \"total\": {\"coalesce_hits\": " +
          std::to_string(total_hits) + ", \"leak_identity\": " +
          (all_identical ? "true" : "false") + ", \"ledger_ok\": " +
          (ledger_ok ? "true" : "false") + "}\n}\n";

  std::ofstream out(out_path);
  out << json;
  std::cout << "\n[serve] wrote " << out_path
            << (out.good() ? "" : " (WRITE FAILED)") << "\n";

  obs_session.finish(std::cout);

  if (!ledger_ok) {
    std::cout << "[serve] FAIL: trace-derived ledger disagrees with the "
                 "registry (see above)\n";
    return 1;
  }
  if (!all_identical) {
    std::cout << "[serve] FAIL: coalesced run leaked differently from the "
                 "sequential reference\n";
    return 1;
  }
  if (total_hits == 0) {
    std::cout << "[serve] FAIL: no query was ever coalesced — the workload "
                 "no longer overlaps\n";
    return 1;
  }
  std::cout << "[serve] leak identity holds across all cells ("
            << total_hits << " coalesced hits)\n";
  return 0;
}
