// Multi-core sharded serving throughput (DESIGN.md §4i), with the
// sequential reference model as a built-in falsifier.
//
// Every cell of the clients grid is served three ways:
//
//   shared    N shards attached to one striped SharedProofStore, arrivals
//             dispatched in global order — the privacy-preserving sharded
//             deployment. Its merged Case-2 set must equal the sequential
//             reference *exactly*, for any --shards value, or the bench
//             exits nonzero.
//   private   N shard-private stacks served genuinely in parallel (one
//             worker per shard) — the fast but re-leaking deployment. Its
//             merged Case-2 must be >= the reference; when it re-leaks,
//             the shared store must strictly reduce it.
//   reference one resolve() per query on a single fresh stack.
//
// All figures in BENCH_serve.json are virtual-time quantities, so the file
// is byte-identical for any --jobs value (worker threads for the private
// mode; 0 = one per shard). It is *not* invariant across --shards — cache
// locality legitimately shifts latency — which is what --merged-out is
// for: a canonical leak file carrying only shard-count-invariant fields
// (shared-mode Case-2 totals, leaked-set digest, causes, reference), so CI
// can `cmp` the files from --shards=1 and --shards=4.
//
// Host-time measurements (wall-clock scaling of the private mode) never
// touch stdout or BENCH_serve.json; they go to --host-out, and
// --expect-scaling=P enforces mean speedup >= (P/100)*min(shards, cores).
//
// Flags: --shards=N, --route=client|qname, --jobs N, --smoke, --out=PATH,
// --merged-out=PATH, --host-out=PATH, --expect-scaling=P.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "metrics/table.h"
#include "obs/leak_ledger.h"
#include "serve/sharded.h"

namespace {

using namespace lookaside;

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

/// FNV-1a over the sorted leaked-domain set: a compact, shard-count-stable
/// identity for the merged leak file.
std::string leaked_digest(const std::set<std::string>& domains) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const std::string& domain : domains) {
    for (const char c : domain) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ULL;
    }
    hash ^= '\n';
    hash *= 0x100000001b3ULL;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

serve::ScenarioOptions cell_options(std::uint32_t clients, bool smoke,
                                    std::size_t index) {
  serve::ScenarioOptions options;
  options.universe_size = smoke ? 2'000 : 10'000;
  options.seed = 7 + index;  // pure function of the cell index
  options.mix.clients = clients;
  options.mix.queries_per_client = smoke ? 20 : 64;
  options.mix.seed = 23 + index;
  options.mix.zipf_support = smoke ? 300 : 1'000;
  // Drop-free sizing (Little's law): one uncached resolution occupies the
  // frontend for ~200 virtual ms, so the aggregate gap is held at 25 ms
  // per client and the expected in-flight depth stays near 8 — far below
  // the admission limit of 128. Shedding would void the identity check.
  options.mix.mean_gap_us = 25'000ULL * clients;
  return options;
}

/// One serving mode's sharded run plus its per-shard observability.
struct ModeRun {
  serve::ShardedSummary summary;
  std::vector<std::unique_ptr<bench::ShardObs>> obs;  // one per shard
};

ModeRun run_mode(const serve::ScenarioOptions& base, std::uint32_t shards,
                 serve::ShardRoute route, bool shared, unsigned jobs,
                 bench::ObsSession& session, bool primary) {
  ModeRun run;
  serve::ShardedOptions options;
  options.base = base;
  options.shards = shards;
  options.route = route;
  options.shared_store = shared;
  options.jobs = jobs;
  bool any_tracer = false;
  bool any_metrics = false;
  for (std::uint32_t s = 0; s < shards; ++s) {
    run.obs.push_back(std::make_unique<bench::ShardObs>(
        session, /*primary=*/primary && s == 0));
    options.shard_tracers.push_back(run.obs.back()->tracer());
    options.shard_metrics.push_back(run.obs.back()->metrics());
    any_tracer = any_tracer || options.shard_tracers.back() != nullptr;
    any_metrics = any_metrics || options.shard_metrics.back() != nullptr;
  }
  if (!any_tracer) options.shard_tracers.clear();
  if (!any_metrics) options.shard_metrics.clear();
  serve::ShardedServeScenario scenario(std::move(options));
  run.summary = scenario.run();
  return run;
}

/// Per-shard trace acceptance: ledger == that shard's registry Case-2 and
/// every record has a complete frontend -> resolver -> DLV span chain.
/// Shard ledgers are additionally folded into `cell_ledger` for the
/// per-cause breakdown.
bool check_shards(const ModeRun& run, const char* mode, std::uint32_t clients,
                  obs::LeakLedger* cell_ledger) {
  bool ok = true;
  for (std::size_t s = 0; s < run.summary.shards.size(); ++s) {
    const serve::ShardReport& report = run.summary.shards[s];
    const obs::LeakLedger* ledger =
        const_cast<bench::ShardObs&>(*run.obs[s]).ledger();
    if (ledger == nullptr) continue;
    if (ledger->case2_total() != report.summary.case2_total) {
      std::cout << "[serve] FAIL: clients=" << clients << " mode=" << mode
                << " shard=" << s << " ledger saw " << ledger->case2_total()
                << " Case-2 records, registry saw "
                << report.summary.case2_total << "\n";
      ok = false;
    }
    const obs::SpanTimeline* timeline = run.obs[s]->timeline();
    const std::size_t broken =
        timeline == nullptr
            ? ledger->records().size()
            : obs::broken_leak_chains(*timeline, ledger->records());
    if (broken != 0) {
      std::cout << "[serve] FAIL: clients=" << clients << " mode=" << mode
                << " shard=" << s << " " << broken
                << " ledger records lack a complete query->resolver->DLV "
                   "chain\n";
      ok = false;
    }
    if (cell_ledger != nullptr) cell_ledger->merge_from(*ledger);
  }
  return ok;
}

std::string causes_json(const obs::LeakLedger& ledger) {
  std::string out = "{";
  bool first = true;
  for (const auto& [cause, count] : ledger.cause_totals()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + cause + "\": " + std::to_string(count);
  }
  return out + "}";
}

/// Everything one cell contributes to the three output files.
struct CellOutcome {
  std::uint32_t clients = 0;
  std::uint64_t queries = 0;
  ModeRun shared;
  ModeRun priv;
  serve::ScenarioSummary reference;
  std::string causes;  // shared-mode per-cause Case-2 breakdown
  bool leak_identity = false;   // shared merged == reference, exactly
  bool reduction_ok = false;    // shared < private whenever private re-leaks
  bool ledger_ok = false;
  // Host-mode wall times (absent from stdout/BENCH_serve.json).
  double serial_wall_ms = 0.0;
  double parallel_wall_ms = 0.0;
};

std::string cell_json(const CellOutcome& cell) {
  const serve::ScenarioSummary& shared = cell.shared.summary.merged;
  const serve::ScenarioSummary& priv = cell.priv.summary.merged;
  const resolver::SharedProofStore::Stats& store = cell.shared.summary.store;
  std::string out = "    {\"clients\": " + std::to_string(cell.clients) +
                    ", \"queries\": " + std::to_string(cell.queries) +
                    ",\n     \"qps\": " + fixed(shared.qps, 2) +
                    ", \"p50_ms\": " + fixed(shared.p50_ms, 3) +
                    ", \"p99_ms\": " + fixed(shared.p99_ms, 3) +
                    ",\n     \"coalesce_rate\": " +
                    fixed(shared.coalesce_rate(), 4) +
                    ", \"coalesce_hits\": " +
                    std::to_string(shared.coalesce_hits) +
                    ", \"overload_drops\": " +
                    std::to_string(shared.overload_drops) +
                    ", \"max_queue_depth\": " +
                    std::to_string(shared.max_queue_depth) +
                    ",\n     \"case2_total\": " +
                    std::to_string(shared.case2_total) +
                    ", \"distinct_leaked\": " +
                    std::to_string(shared.distinct_leaked) +
                    ",\n     \"case2_per_client\": [";
  for (std::size_t i = 0; i < shared.case2_per_client.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shared.case2_per_client[i]);
  }
  out += "],\n     \"reference\": {\"case2_total\": " +
         std::to_string(cell.reference.case2_total) +
         ", \"distinct_leaked\": " +
         std::to_string(cell.reference.distinct_leaked) +
         "},\n     \"private\": {\"case2_total\": " +
         std::to_string(priv.case2_total) + ", \"distinct_leaked\": " +
         std::to_string(priv.distinct_leaked) + ", \"reexposure\": " +
         std::to_string(priv.case2_total - cell.reference.case2_total) +
         "},\n     \"store\": {\"nsec_hits\": " +
         std::to_string(store.nsec_hits) + ", \"nsec_sibling_hits\": " +
         std::to_string(store.nsec_sibling_hits) + ", \"cut_hits\": " +
         std::to_string(store.cut_hits) + ", \"cut_sibling_hits\": " +
         std::to_string(store.cut_sibling_hits) + "},\n     \"per_shard\": [";
  for (std::size_t s = 0; s < cell.shared.summary.shards.size(); ++s) {
    const serve::ShardReport& sh = cell.shared.summary.shards[s];
    const serve::ShardReport& pv = cell.priv.summary.shards[s];
    if (s > 0) out += ", ";
    out += "{\"shard\": " + std::to_string(sh.shard) +
           ", \"clients\": " + std::to_string(sh.clients_routed) +
           ", \"queries\": " + std::to_string(sh.queries_routed) +
           ", \"qps\": " + fixed(sh.summary.qps, 2) +
           ", \"p99_ms\": " + fixed(sh.summary.p99_ms, 3) +
           ", \"case2_shared\": " + std::to_string(sh.summary.case2_total) +
           ", \"case2_private\": " + std::to_string(pv.summary.case2_total) +
           "}";
  }
  out += "],\n     \"ledger\": {\"causes\": " + cell.causes +
         ", \"chains_ok\": " + (cell.ledger_ok ? "true" : "false") +
         "},\n     \"leak_identity\": " +
         (cell.leak_identity ? "true" : "false") +
         ", \"reduction_ok\": " + (cell.reduction_ok ? "true" : "false") +
         ", \"sums_consistent\": " +
         (cell.shared.summary.sums_consistent &&
                  cell.priv.summary.sums_consistent
              ? "true"
              : "false") +
         "}";
  return out;
}

/// One cell of the shard-count-invariant merged leak file: only fields the
/// shared mode provably holds constant across --shards (registry-side leak
/// identity), never latency/QPS (cache locality shifts those).
std::string merged_cell_json(const CellOutcome& cell) {
  const serve::ScenarioSummary& shared = cell.shared.summary.merged;
  return "    {\"clients\": " + std::to_string(cell.clients) +
         ", \"queries\": " + std::to_string(cell.queries) +
         ", \"case2_total\": " + std::to_string(shared.case2_total) +
         ", \"distinct_leaked\": " + std::to_string(shared.distinct_leaked) +
         ",\n     \"leaked_sha\": \"" + leaked_digest(shared.leaked_domains) +
         "\", \"causes\": " + cell.causes +
         ",\n     \"reference\": {\"case2_total\": " +
         std::to_string(cell.reference.case2_total) +
         ", \"distinct_leaked\": " +
         std::to_string(cell.reference.distinct_leaked) +
         ", \"leaked_sha\": \"" + leaked_digest(cell.reference.leaked_domains) +
         "\"},\n     \"leak_identity\": " +
         (cell.leak_identity ? "true" : "false") + "}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lookaside;

  const bench::ArgParser args(
      argc, argv,
      {"shards", "route", "merged-out", "host-out", "expect-scaling"});
  const bool smoke = args.smoke();
  const std::string out_path = args.out("BENCH_serve.json");
  const std::string merged_path = args.value("merged-out");
  const std::string host_path = args.value("host-out");
  const std::uint64_t expect_scaling = args.numeric("expect-scaling", 0);
  const bool host_mode = !host_path.empty() || expect_scaling > 0;
  const unsigned jobs = args.jobs();
  const auto shards =
      static_cast<std::uint32_t>(args.numeric("shards", 1));
  if (shards == 0 || shards > 64) {
    std::cerr << "error: --shards expects 1..64\n";
    return 2;
  }
  const std::optional<serve::ShardRoute> route =
      serve::parse_route(args.value("route", "client"));
  if (!route.has_value()) {
    std::cerr << "error: --route expects 'client' or 'qname'\n";
    return 2;
  }

  bench::banner("Sharded serving: shared proof store vs. private vs. sequential");
  std::cout << "Each cell routes a ClientMix schedule across " << shards
            << " resolver shard(s) (" << serve::route_name(*route)
            << " consistent-hash), twice: once with the striped shared\n"
               "proof store (must leak exactly the sequential reference's\n"
               "Case-2 set), once shard-private in parallel (re-leaks; the\n"
               "store must strictly reduce it). --shards N, --route, --jobs\n"
               "N (private-mode workers), --smoke for CI-sized cells.\n";

  const std::vector<std::uint32_t> client_grid =
      smoke ? std::vector<std::uint32_t>{2, 4}
            : std::vector<std::uint32_t>{4, 8, 16};

  bench::ObsSession obs_session(args.obs());
  // The ledger is always on: BENCH_serve.json carries the per-cause Case-2
  // breakdown, and each shard's trace-derived ledger must equal its
  // registry-side count (a second falsifier next to the reference).
  obs_session.enable_ledger();

  metrics::Table table({"Clients", "Queries", "QPS(virt)", "p99 ms",
                        "Coalesce", "C2 shared", "C2 priv", "C2 ref",
                        "Sib hits", "Identity"});
  std::vector<CellOutcome> cells;
  std::uint64_t total_hits = 0;
  std::uint64_t total_shared_case2 = 0;
  std::uint64_t total_private_case2 = 0;
  std::uint64_t total_reference_case2 = 0;
  bool all_identical = true;
  bool all_reduced = true;
  bool ledger_ok = true;
  bool sums_ok = true;
  for (std::size_t i = 0; i < client_grid.size(); ++i) {
    CellOutcome cell;
    cell.clients = client_grid[i];
    const serve::ScenarioOptions base = cell_options(cell.clients, smoke, i);
    cell.queries =
        static_cast<std::uint64_t>(cell.clients) * base.mix.queries_per_client;

    // Shared-store leg: deterministic global-order dispatch; this is the
    // run whose observability feeds the session outputs (merging the
    // private leg's ledgers too would double every leak).
    cell.shared = run_mode(base, shards, *route, /*shared=*/true, jobs,
                           obs_session, /*primary=*/i == 0);
    // Private leg: parallel, shard-private caches, re-leaks.
    cell.priv = run_mode(base, shards, *route, /*shared=*/false, jobs,
                         obs_session, /*primary=*/false);
    // Sequential reference on a fresh identical world, untraced.
    serve::ServeScenario reference(base);
    cell.reference = reference.run_sequential_reference();

    obs::LeakLedger cell_ledger;
    cell.ledger_ok =
        check_shards(cell.shared, "shared", cell.clients, &cell_ledger) &&
        check_shards(cell.priv, "private", cell.clients, nullptr);
    cell.causes = causes_json(cell_ledger);
    for (auto& shard_obs : cell.shared.obs) {
      shard_obs->merge_into(obs_session);
    }

    const serve::ScenarioSummary& shared = cell.shared.summary.merged;
    const serve::ScenarioSummary& priv = cell.priv.summary.merged;
    cell.leak_identity =
        shared.case2_total == cell.reference.case2_total &&
        shared.leaked_domains == cell.reference.leaked_domains;
    // The private mode can only add leaks; when it does, the store must
    // win strictly. (With 1 shard the two modes coincide — nothing to
    // reduce.)
    cell.reduction_ok =
        priv.case2_total >= cell.reference.case2_total &&
        (priv.case2_total == cell.reference.case2_total ||
         shared.case2_total < priv.case2_total);

    if (host_mode) {
      // Untraced timing legs: same private-mode config serially (one
      // worker) and fully parallel, so the speedup compares identical
      // virtual work and no tracer overhead skews either side.
      serve::ShardedOptions timing;
      timing.base = base;
      timing.shards = shards;
      timing.route = *route;
      timing.jobs = 1;
      serve::ShardedServeScenario serial(timing);
      cell.serial_wall_ms = serial.run().serve_wall_ms;
      timing.jobs = 0;  // one worker per shard
      serve::ShardedServeScenario parallel_leg(timing);
      cell.parallel_wall_ms = parallel_leg.run().serve_wall_ms;
    }

    total_hits += shared.coalesce_hits;
    total_shared_case2 += shared.case2_total;
    total_private_case2 += priv.case2_total;
    total_reference_case2 += cell.reference.case2_total;
    all_identical = all_identical && cell.leak_identity;
    all_reduced = all_reduced && cell.reduction_ok;
    ledger_ok = ledger_ok && cell.ledger_ok;
    sums_ok = sums_ok && cell.shared.summary.sums_consistent &&
              cell.priv.summary.sums_consistent;
    table.row()
        .cell(std::to_string(cell.clients))
        .cell(std::to_string(cell.queries))
        .cell(fixed(shared.qps, 1))
        .cell(fixed(shared.p99_ms, 1))
        .cell(fixed(100.0 * shared.coalesce_rate(), 1) + "%")
        .cell(std::to_string(shared.case2_total))
        .cell(std::to_string(priv.case2_total))
        .cell(std::to_string(cell.reference.case2_total))
        .cell(std::to_string(cell.shared.summary.store.nsec_sibling_hits +
                             cell.shared.summary.store.cut_sibling_hits))
        .cell(cell.leak_identity ? "ok" : "MISMATCH");
    cells.push_back(std::move(cell));
  }
  table.print(std::cout);

  std::string json = "{\n  \"schema\": \"lookaside.bench_serve.v3\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"shards\": " + std::to_string(shards) + ",\n";
  json += std::string("  \"route\": \"") + serve::route_name(*route) + "\",\n";
  json += "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    json += cell_json(cells[i]);
    json += (i + 1 < cells.size()) ? ",\n" : "\n";
  }
  json += "  ],\n  \"total\": {\"coalesce_hits\": " +
          std::to_string(total_hits) +
          ", \"case2_shared\": " + std::to_string(total_shared_case2) +
          ", \"case2_private\": " + std::to_string(total_private_case2) +
          ", \"case2_reference\": " + std::to_string(total_reference_case2) +
          ",\n            \"leak_identity\": " +
          (all_identical ? "true" : "false") +
          ", \"reduction_ok\": " + (all_reduced ? "true" : "false") +
          ", \"ledger_ok\": " + (ledger_ok ? "true" : "false") +
          ", \"sums_consistent\": " + (sums_ok ? "true" : "false") + "}\n}\n";

  std::ofstream out(out_path);
  out << json;
  std::cout << "\n[serve] wrote " << out_path
            << (out.good() ? "" : " (WRITE FAILED)") << "\n";

  if (!merged_path.empty()) {
    // Canonical merged leak file: byte-identical for any --shards/--jobs
    // value in shared mode (the CI shard-smoke `cmp` artifact). No shard
    // count, no latency, no host quantities.
    std::string merged = "{\n  \"schema\": \"lookaside.bench_serve.merged.v1\",\n";
    merged += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
    merged += "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      merged += merged_cell_json(cells[i]);
      merged += (i + 1 < cells.size()) ? ",\n" : "\n";
    }
    merged += "  ]\n}\n";
    std::ofstream merged_out(merged_path);
    merged_out << merged;
    std::cout << "[serve] wrote " << merged_path
              << (merged_out.good() ? "" : " (WRITE FAILED)") << "\n";
  }

  double mean_speedup = 0.0;
  const unsigned cores = std::thread::hardware_concurrency();
  if (host_mode) {
    std::string host = "{\n  \"schema\": \"lookaside.bench_serve.host.v1\",\n";
    host += "  \"hardware_concurrency\": " + std::to_string(cores) + ",\n";
    host += "  \"shards\": " + std::to_string(shards) + ",\n  \"cells\": [\n";
    std::size_t counted = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const double speedup = cells[i].parallel_wall_ms > 0.0
                                 ? cells[i].serial_wall_ms /
                                       cells[i].parallel_wall_ms
                                 : 0.0;
      if (speedup > 0.0) {
        mean_speedup += speedup;
        ++counted;
      }
      host += "    {\"clients\": " + std::to_string(cells[i].clients) +
              ", \"serial_wall_ms\": " + fixed(cells[i].serial_wall_ms, 2) +
              ", \"parallel_wall_ms\": " +
              fixed(cells[i].parallel_wall_ms, 2) +
              ", \"speedup\": " + fixed(speedup, 3) + "}";
      host += (i + 1 < cells.size()) ? ",\n" : "\n";
    }
    mean_speedup = counted == 0 ? 0.0 : mean_speedup / counted;
    host += "  ],\n  \"mean_speedup\": " + fixed(mean_speedup, 3) + "\n}\n";
    if (!host_path.empty()) {
      std::ofstream host_out(host_path);
      host_out << host;
      std::cout << "[serve] wrote " << host_path
                << (host_out.good() ? "" : " (WRITE FAILED)") << "\n";
    }
    std::cout << "[serve] host: " << cores << " cores, mean private-mode "
              << "speedup " << fixed(mean_speedup, 2) << "x over " << shards
              << " shard(s)\n";
  }

  obs_session.finish(std::cout);

  if (!ledger_ok) {
    std::cout << "[serve] FAIL: trace-derived ledgers disagree with the "
                 "per-shard registries (see above)\n";
    return 1;
  }
  if (!all_identical) {
    std::cout << "[serve] FAIL: shared-store sharded run leaked differently "
                 "from the sequential reference\n";
    return 1;
  }
  if (!all_reduced) {
    std::cout << "[serve] FAIL: shared proof store failed to strictly reduce "
                 "the private mode's re-leaks\n";
    return 1;
  }
  if (!sums_ok) {
    std::cout << "[serve] FAIL: per-shard counts do not sum to the merged "
                 "totals\n";
    return 1;
  }
  if (total_hits == 0) {
    std::cout << "[serve] FAIL: no query was ever coalesced — the workload "
                 "no longer overlaps\n";
    return 1;
  }
  if (shards > 1 && total_private_case2 == total_reference_case2) {
    std::cout << "[serve] FAIL: private sharding never re-leaked — the "
                 "workload no longer overlaps across shards\n";
    return 1;
  }
  if (expect_scaling > 0) {
    if (cores < 2) {
      std::cout << "[serve] NOTE: --expect-scaling skipped; only " << cores
                << " core(s) — wall-clock speedup is not authoritative here\n";
    } else {
      const double effective =
          static_cast<double>(std::min<unsigned>(shards, cores));
      const double floor_speedup =
          (static_cast<double>(expect_scaling) / 100.0) * effective;
      if (mean_speedup < floor_speedup) {
        std::cout << "[serve] FAIL: mean speedup " << fixed(mean_speedup, 2)
                  << "x < required " << fixed(floor_speedup, 2) << "x ("
                  << expect_scaling << "% of " << fixed(effective, 0)
                  << " effective cores)\n";
        return 1;
      }
      std::cout << "[serve] scaling ok: " << fixed(mean_speedup, 2)
                << "x >= " << fixed(floor_speedup, 2) << "x\n";
    }
  }
  std::cout << "[serve] leak identity holds across all cells (" << total_hits
            << " coalesced hits, " << total_private_case2 - total_reference_case2
            << " private re-leaks suppressed by the shared store)\n";
  return 0;
}
