// Ablation: the role of aggressive negative caching (paper §7.3).
//
// The paper's §7.3 argues that if the DLV registry used NSEC3/NSEC5,
// aggressive negative caching would be unavailable ("Every query to the
// resolver would trigger a query to the DLV server"), trading the
// enumeration-resistance of hashed denial for *more* leakage. This ablation
// quantifies that: same workload, NSEC caching on vs. off, plus the DLV
// negative-cache TTL sweep that shows how cache lifetime shapes leakage.
#include <iostream>

#include "bench_util.h"
#include <memory>

#include "core/experiment.h"
#include "dlv/registry.h"
#include "metrics/table.h"

namespace {

lookaside::core::LeakageReport run(std::uint64_t n, bool aggressive,
                                   std::uint32_t ttl,
                                   lookaside::core::PhaseMetrics* metrics) {
  lookaside::core::UniverseExperiment::Options options;
  options.resolver_config = lookaside::resolver::ResolverConfig::bind_yum();
  options.resolver_config.aggressive_negative_caching = aggressive;
  options.dlv_negative_ttl = ttl;
  lookaside::core::UniverseExperiment experiment(options);
  const auto report = experiment.run_topn(n);
  if (metrics != nullptr) *metrics = experiment.metrics();
  return report;
}

}  // namespace

int main() {
  using namespace lookaside;

  const std::uint64_t n =
      std::min<std::uint64_t>(bench::max_scale(5'000), 100'000);

  bench::banner("Ablation A: aggressive negative caching on vs. off (Sec. 7.3)");
  metrics::Table table({"NSEC caching", "DLV queries", "Leaked domains",
                        "Leak %", "Time (s)", "Traffic (MB)"});
  for (const bool aggressive : {true, false}) {
    core::PhaseMetrics metrics;
    const auto report = run(n, aggressive, 3600, &metrics);
    table.row()
        .cell(aggressive ? "on (NSEC registry)" : "off (NSEC3/NSEC5 model)")
        .cell(report.dlv_queries)
        .cell(report.distinct_leaked_domains)
        .percent_cell(report.leaked_proportion())
        .cell(metrics.response_seconds, 1)
        .cell(metrics.megabytes, 2);
  }
  table.print(std::cout);
  std::cout << "\nExpected: with caching off, every insecure resolution hits\n"
               "the DLV server — strictly more queries and leaked domains\n"
               "(the paper's NSEC3/NSEC5 privacy-vs-performance tradeoff).\n";

  bench::banner("Ablation B: DLV negative-cache TTL sweep");
  metrics::Table ttl_table({"Negative TTL (s)", "DLV queries",
                            "Leaked domains", "Leak %"});
  for (const std::uint32_t ttl : {10u, 60u, 600u, 3600u, 86400u}) {
    const auto report = run(n, true, ttl, nullptr);
    ttl_table.row()
        .cell(static_cast<std::uint64_t>(ttl))
        .cell(report.dlv_queries)
        .cell(report.distinct_leaked_domains)
        .percent_cell(report.leaked_proportion());
  }
  ttl_table.print(std::cout);
  std::cout << "\nExpected: leakage decreases monotonically with TTL — longer\n"
               "denial lifetimes mean more queries are answered from the\n"
               "aggressive cache instead of reaching the third party.\n";

  bench::banner("Ablation C: number of configured DLV registries (Sec. 7.3.2)");
  // "ISC is only one of many used in the wild": a resolver configured with
  // several registries leaks to every one of them on each miss. Run in the
  // NSEC3/NSEC5 denial model (no aggressive caching): with NSEC caching an
  // *empty* extra registry self-limits — its single wrap-around NSEC range
  // covers the whole namespace, so a caching validator only ever sends it
  // one query. (A measured nuance of ISC's empty-zone phase-out: it leaks
  // far less to caching validators than to non-caching ones.)
  metrics::Table multi_table({"Registries", "Total DLV queries observed",
                              "Observed per visited domain"});
  const std::uint64_t multi_n = std::min<std::uint64_t>(n, 1'000);
  for (int extra = 0; extra <= 2; ++extra) {
    core::UniverseExperiment::Options options;
    options.resolver_config.aggressive_negative_caching = false;
    for (int i = 0; i < extra; ++i) {
      options.resolver_config.additional_dlv_domains.push_back(
          dns::Name::parse(i == 0 ? "dlv.cert.ru" : "dlv.trusted-keys.de"));
    }
    core::UniverseExperiment experiment(options);
    // Additional registries are independent third parties with their own
    // (empty, post-phase-out-style) zones — everything they observe is
    // Case-2 by construction.
    std::vector<std::unique_ptr<dlv::DlvRegistry>> extras;
    std::uint64_t extra_queries = 0;
    for (const dns::Name& apex :
         experiment.resolver().config().additional_dlv_domains) {
      dlv::DlvRegistry::Options registry_options;
      registry_options.apex = apex;
      registry_options.seed = 0xD17 + extras.size() + 1;
      extras.push_back(std::make_unique<dlv::DlvRegistry>(registry_options));
      extras.back()->set_store_observations(false);
      experiment.world().directory().register_zone(
          apex, std::shared_ptr<sim::Endpoint>(extras.back().get(),
                                               [](sim::Endpoint*) {}));
      experiment.resolver().set_dlv_trust_anchor(
          apex, extras.back()->trust_anchor());
    }
    const auto report = experiment.run_topn(multi_n);
    for (const auto& registry : extras) {
      extra_queries += registry->total_queries();
    }
    multi_table.row()
        .cell(static_cast<std::uint64_t>(1 + extra))
        .cell(report.dlv_queries + extra_queries)
        .cell(metrics::Table::fixed(
            static_cast<double>(report.dlv_queries + extra_queries) /
                static_cast<double>(multi_n),
            2));
  }
  multi_table.print(std::cout);
  std::cout << "\nExpected: observed queries scale with the number of\n"
               "configured registries — every additional third party sees\n"
               "(roughly) the same Case-2 stream.\n";
  return 0;
}
