// CI perf gate: fails the pipeline when a freshly generated bench JSON
// regresses against the committed baseline.
//
// Both inputs are flattened to dotted numeric paths
// ("single_thread.resolutions_per_sec", "cells.0.qps", ...) and every
// numeric the baseline carries is compared under a per-metric rule chosen
// from the file's "schema" field:
//
//   lookaside.bench_perf.*   wall-clock numbers from a shared CI runner are
//                            noisy, so throughput may drop up to 60% and
//                            latencies may grow up to 150% before the gate
//                            trips — the gate catches order-of-magnitude
//                            cliffs, not jitter. Shape fields (jobs,
//                            resolution counts) are ignored.
//   lookaside.bench_serve.*  virtual-time quantities: qps/p50/p99 get a 15%
//                            band (room for deliberate retuning), while
//                            every leak/ledger/coalesce count is exact —
//                            a drifting Case-2 count is a correctness bug,
//                            never noise.
//   bench_cache_churn/*      pure virtual-time: every count including the
//                            per-cause Case-2 ledger breakdown is exact.
//   lookaside.bench_nsec3.*  pure virtual-time: CPU bills, shed counts and
//                            cause breakdowns are exact.
//   anything else            every shared numeric must match exactly.
//
// Per-path overrides: trailing `path=TOL` args (relative band in either
// direction), `path=exact`, or `path=skip`.
//
// Options (parsed before overrides — they also contain '='):
//   --trajectory=PATH     append one JSONL record per compared metric
//                         (baseline value, fresh value, rule, verdict, and
//                         the commit sha when GITHUB_SHA is set) so CI can
//                         accumulate a perf trajectory across commits and
//                         upload it as an artifact. Re-runs on the same
//                         GITHUB_SHA skip metrics already recorded for
//                         that (sha, baseline) pair, so retried jobs do
//                         not double-count points in the sparklines.
//   --suggest-baseline    on failure, print every metric whose value moved
//                         (the diff a regenerated baseline would commit)
//                         plus the exact cp command — so an intentional
//                         perf change is a copy-paste away from green.
//
// Usage: ci_perf_gate <baseline.json> <fresh.json> [options] [path=rule...]
// Exit: 0 pass, 1 regression or missing metric, 2 usage/parse error.
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

/// Minimal recursive-descent JSON reader that flattens numeric and string
/// leaves into dotted-path maps. Booleans become 0/1 so contract flags
/// ("leak_identity") gate like any other exact metric.
class FlatJson {
 public:
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;

  bool parse(const std::string& text) {
    text_ = text;
    pos_ = 0;
    if (!value("")) return false;
    skip();
    return pos_ == text_.size();
  }

 private:
  std::string text_;
  std::size_t pos_ = 0;

  void skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    skip();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  static std::string join(const std::string& parent, const std::string& key) {
    return parent.empty() ? key : parent + "." + key;
  }

  bool string_literal(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out += c;
    }
    return consume('"');
  }

  bool value(const std::string& path) {
    skip();
    const char c = peek();
    if (c == '{') return object(path);
    if (c == '[') return array(path);
    if (c == '"') {
      std::string text;
      if (!string_literal(text)) return false;
      strings[path] = text;
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      numbers[path] = 1.0;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      numbers[path] = 0.0;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    char* end = nullptr;
    const double parsed = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - text_.c_str());
    numbers[path] = parsed;
    return true;
  }

  bool object(const std::string& path) {
    if (!consume('{')) return false;
    skip();
    if (consume('}')) return true;
    while (true) {
      std::string key;
      skip();
      if (!string_literal(key)) return false;
      if (!consume(':')) return false;
      if (!value(join(path, key))) return false;
      skip();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(const std::string& path) {
    if (!consume('[')) return false;
    skip();
    if (consume(']')) return true;
    std::size_t index = 0;
    while (true) {
      if (!value(join(path, std::to_string(index++)))) return false;
      skip();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

enum class Direction { kHigherBetter, kLowerBetter, kBand, kExact, kSkip };

struct Rule {
  Direction direction = Direction::kExact;
  double tolerance = 0.0;  // relative band
};

/// Last dotted-path component ("cells.0.qps" -> "qps").
std::string leaf(const std::string& path) {
  const auto dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

bool ends_with(const std::string& text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Rule schema_rule(const std::string& schema, const std::string& path) {
  const std::string name = leaf(path);
  if (schema.rfind("lookaside.bench_perf", 0) == 0) {
    if (name == "resolutions_per_sec") {
      return {Direction::kHigherBetter, 0.60};
    }
    if (name == "seconds" || ends_with(name, "_ns")) {
      return {Direction::kLowerBetter, 1.50};
    }
    // Virtual counts off the deterministic churn leg (v3): how many RSA
    // verifications batching executed vs deduped is workload-determined,
    // not wall-clock — a drift is a behavior change, so hold it exactly.
    // (Being in the baseline also means the gate fails if a regression
    // stops recording them: missing-from-fresh is a failure above.)
    if (name == "batch_unique" || name == "batch_deduped") {
      return {Direction::kExact, 0.0};
    }
    // jobs, hardware_concurrency, resolutions, speedup (null on 1-core
    // hosts), parallelism_authoritative: shape/noise fields.
    return {Direction::kSkip, 0.0};
  }
  if (schema.rfind("lookaside.bench_serve", 0) == 0) {
    if (name == "qps") return {Direction::kHigherBetter, 0.15};
    if (name == "p50_ms" || name == "p99_ms" || name == "max_queue_depth") {
      return {Direction::kLowerBetter, 0.15};
    }
    if (name == "coalesce_rate") return {Direction::kHigherBetter, 0.15};
    return {Direction::kExact, 0.0};  // every count and contract flag
  }
  if (schema.rfind("bench_cache_churn", 0) == 0) {
    // Pure virtual-time bench: every number — Case-2 counts, the per-cause
    // ledger breakdown (cold-miss/ttl-expiry/eviction/nsec-gap), cache
    // footprints, virtual seconds — is a deterministic function of the
    // workload. Any drift is a behavior change, so everything is exact.
    return {Direction::kExact, 0.0};
  }
  if (schema.rfind("lookaside.bench_nsec3", 0) == 0) {
    // Same determinism contract as the cache bench: validation-CPU bills,
    // shed counts, per-cause Case-2 breakdowns and latency quantiles all
    // come off the virtual clock and must reproduce exactly.
    return {Direction::kExact, 0.0};
  }
  return {Direction::kExact, 0.0};
}

const char* direction_name(Direction direction) {
  switch (direction) {
    case Direction::kHigherBetter: return "higher_better";
    case Direction::kLowerBetter: return "lower_better";
    case Direction::kBand: return "band";
    case Direction::kExact: return "exact";
    case Direction::kSkip: return "skip";
  }
  return "exact";
}

/// One compared metric, for the trajectory file and --suggest-baseline.
struct GateResult {
  std::string path;
  double base = 0.0;
  double fresh = 0.0;
  bool missing = false;  // present in baseline, absent from fresh
  Rule rule;
  bool ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  const auto read_flat = [](const std::string& path, FlatJson& out) {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "error: cannot open " << path << "\n";
      return false;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    if (!out.parse(buffer.str())) {
      std::cerr << "error: " << path << " is not valid JSON\n";
      return false;
    }
    return true;
  };

  // Options start with "--" and may appear before or after the two
  // positional file paths; they may contain '=' themselves, so they must
  // never fall through to the path=RULE override parser.
  std::string trajectory_path;
  bool suggest_baseline = false;
  std::map<std::string, Rule> overrides;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trajectory=", 0) == 0) {
      trajectory_path = arg.substr(13);
      if (trajectory_path.empty()) {
        std::cerr << "error: --trajectory= expects a path\n";
        return 2;
      }
      continue;
    }
    if (arg == "--suggest-baseline") {
      suggest_baseline = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown option '" << arg
                << "'; accepted: --trajectory=PATH --suggest-baseline\n";
      return 2;
    }
    // The first two bare arguments are the baseline and fresh files; the
    // rest are path=RULE overrides.
    if (positional.size() < 2) {
      positional.push_back(arg);
      continue;
    }
    const auto eq = arg.rfind('=');
    if (eq == std::string::npos || eq == 0) {
      std::cerr << "error: override '" << arg << "' is not path=RULE\n";
      return 2;
    }
    const std::string spec = arg.substr(eq + 1);
    Rule rule;
    if (spec == "exact") {
      rule = {Direction::kExact, 0.0};
    } else if (spec == "skip") {
      rule = {Direction::kSkip, 0.0};
    } else {
      char* end = nullptr;
      rule.tolerance = std::strtod(spec.c_str(), &end);
      if (end != spec.c_str() + spec.size() || rule.tolerance < 0) {
        std::cerr << "error: bad tolerance in '" << arg << "'\n";
        return 2;
      }
      // A plain tolerance bounds drift in both directions.
      rule.direction = Direction::kBand;
    }
    overrides[arg.substr(0, eq)] = rule;
  }

  if (positional.size() < 2) {
    std::cerr << "usage: ci_perf_gate [--trajectory=PATH] "
                 "[--suggest-baseline] <baseline.json> <fresh.json> "
                 "[path=TOL|exact|skip ...]\n";
    return 2;
  }
  const std::string baseline_path = positional[0];
  const std::string fresh_path = positional[1];

  FlatJson baseline;
  FlatJson fresh;
  if (!read_flat(baseline_path, baseline) || !read_flat(fresh_path, fresh)) {
    return 2;
  }

  const std::string schema = baseline.strings.count("schema") != 0
                                 ? baseline.strings.at("schema")
                                 : "";
  if (fresh.strings.count("schema") != 0 && !schema.empty() &&
      fresh.strings.at("schema") != schema) {
    std::cout << "[gate] note: schema changed " << schema << " -> "
              << fresh.strings.at("schema") << "\n";
  }

  std::size_t compared = 0;
  std::size_t failed = 0;
  std::vector<GateResult> results;
  for (const auto& [path, base] : baseline.numbers) {
    Rule rule = schema_rule(schema, path);
    if (const auto it = overrides.find(path); it != overrides.end()) {
      rule = it->second;
    }
    if (rule.direction == Direction::kSkip) continue;

    const auto fresh_it = fresh.numbers.find(path);
    if (fresh_it == fresh.numbers.end()) {
      std::cout << "[gate] FAIL " << path << ": present in baseline, missing "
                << "from fresh output\n";
      results.push_back({path, base, 0.0, /*missing=*/true, rule, false});
      ++failed;
      continue;
    }
    const double now = fresh_it->second;
    ++compared;

    bool ok = true;
    switch (rule.direction) {
      case Direction::kExact:
        ok = now == base;
        break;
      case Direction::kHigherBetter:
        ok = now >= base * (1.0 - rule.tolerance);
        break;
      case Direction::kLowerBetter:
        ok = now <= base * (1.0 + rule.tolerance);
        break;
      case Direction::kBand:
        ok = std::fabs(now - base) <= rule.tolerance * std::fabs(base);
        break;
      case Direction::kSkip:
        break;
    }
    if (!ok) {
      std::cout << "[gate] FAIL " << path << ": baseline " << base
                << ", fresh " << now;
      if (rule.direction != Direction::kExact) {
        std::cout << " (tolerance " << rule.tolerance * 100 << "%)";
      }
      std::cout << "\n";
      ++failed;
    }
    results.push_back({path, base, now, /*missing=*/false, rule, ok});
  }

  std::cout << "[gate] " << compared << " metrics compared against " << baseline_path
            << ", " << failed << " regressed\n";

  if (!trajectory_path.empty()) {
    // Append-only JSONL so successive CI runs accumulate one trajectory
    // file per pipeline; the sha ties each record to its commit. Retried
    // jobs re-run the gate on the same commit, so appends are deduplicated
    // by (sha, baseline, metric path): a record that already exists for
    // this sha is skipped rather than double-counted in the
    // plot_trajectory sparklines. Without a sha (local runs) every append
    // is kept — there is no commit identity to dedupe on.
    const char* sha_env = std::getenv("GITHUB_SHA");
    const std::string sha = sha_env == nullptr ? "" : sha_env;
    std::set<std::string> already_recorded;
    if (!sha.empty()) {
      std::ifstream existing(trajectory_path);
      const std::string sha_marker = "\"sha\": \"" + sha + "\"";
      const std::string baseline_marker =
          "\"baseline\": \"" + baseline_path + "\"";
      std::string line;
      while (std::getline(existing, line)) {
        if (line.find(sha_marker) == std::string::npos) continue;
        if (line.find(baseline_marker) == std::string::npos) continue;
        const std::string path_key = "\"path\": \"";
        const auto at = line.find(path_key);
        if (at == std::string::npos) continue;
        const auto start = at + path_key.size();
        const auto end = line.find('"', start);
        if (end == std::string::npos) continue;
        already_recorded.insert(line.substr(start, end - start));
      }
    }
    std::ofstream trajectory(trajectory_path, std::ios::app);
    std::size_t appended = 0;
    std::size_t deduped = 0;
    for (const GateResult& result : results) {
      if (already_recorded.count(result.path) != 0) {
        ++deduped;
        continue;
      }
      trajectory << "{\"baseline\": \"" << baseline_path << "\", \"schema\": \""
                 << schema << "\"";
      if (!sha.empty()) trajectory << ", \"sha\": \"" << sha << "\"";
      trajectory << ", \"path\": \"" << result.path << "\", \"base\": "
                 << result.base << ", \"fresh\": ";
      if (result.missing) {
        trajectory << "null";
      } else {
        trajectory << result.fresh;
      }
      trajectory << ", \"rule\": \"" << direction_name(result.rule.direction)
                 << "\", \"tolerance\": " << result.rule.tolerance
                 << ", \"ok\": " << (result.ok ? "true" : "false") << "}\n";
      ++appended;
    }
    std::cout << "[gate] trajectory: appended " << appended << " records to "
              << trajectory_path;
    if (deduped != 0) {
      std::cout << " (" << deduped << " already recorded for this sha)";
    }
    std::cout << (trajectory.good() ? "" : " (WRITE FAILED)") << "\n";
  }

  if (failed != 0) {
    if (suggest_baseline) {
      // The diff a regenerated baseline would commit: every metric whose
      // value moved, not only the ones outside tolerance — retuning one
      // knob usually shifts neighbors inside their bands too, and those
      // shifts land in the new baseline alongside the failing ones.
      std::cout << "[gate] suggested baseline changes (" << baseline_path << "):\n";
      for (const GateResult& result : results) {
        if (result.missing) {
          std::cout << "[gate]   " << result.path << ": " << result.base
                    << " -> (missing; field removed?)\n";
        } else if (result.fresh != result.base) {
          std::cout << "[gate]   " << result.path << ": " << result.base
                    << " -> " << result.fresh
                    << (result.ok ? "" : "   [REGRESSED]") << "\n";
        }
      }
      std::cout << "[gate] if intentional: cp " << fresh_path << " " << baseline_path
                << " and commit it with the code\n";
    }
    std::cout << "[gate] FAILED: perf/leak trajectory regressed — if the "
                 "change is intentional, regenerate the baseline JSON and "
                 "commit it with the code\n";
    return 1;
  }
  std::cout << "[gate] OK\n";
  return 0;
}
