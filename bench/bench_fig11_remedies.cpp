// Reproduces Fig. 11: plain DLV vs. the TXT remedy vs. the Z-bit remedy
// across response time, traffic volume and query count.
//
// Paper reference: the TXT option incurs the highest overhead on every
// metric; the Z bit is essentially free ("the bit can be masked in the same
// response as the original response").
#include <iostream>

#include "bench_util.h"
#include "core/overhead.h"
#include "metrics/table.h"

int main() {
  using namespace lookaside;

  bench::banner("Fig. 11: DLV vs. TXT vs. Z-bit remedies");

  const std::uint64_t max_n =
      std::min<std::uint64_t>(bench::max_scale(10'000), 100'000);

  metrics::Table table({"#Domains", "Mode", "Time (s)", "Traffic (MB)",
                        "Queries"});
  for (const std::uint64_t n : bench::n_ladder(max_n)) {
    // One baseline run; remedies measured against it.
    core::UniverseExperiment::Options options;

    core::UniverseExperiment baseline(options);
    (void)baseline.run_topn(n);
    const core::PhaseMetrics base = baseline.metrics();
    table.row().cell(n).cell("DLV (baseline)").cell(base.response_seconds, 2)
        .cell(base.megabytes, 2).cell(base.queries);

    {
      core::UniverseExperiment::Options txt = options;
      txt.remedy = core::RemedyMode::kTxt;
      txt.remedy_deployed_at_authorities = false;  // paper methodology
      core::UniverseExperiment experiment(txt);
      (void)experiment.run_topn(n);
      const core::PhaseMetrics m = experiment.metrics();
      table.row().cell(n).cell("TXT").cell(m.response_seconds, 2)
          .cell(m.megabytes, 2).cell(m.queries);
    }
    {
      core::UniverseExperiment::Options zbit = options;
      zbit.remedy = core::RemedyMode::kZBit;
      core::UniverseExperiment experiment(zbit);
      (void)experiment.run_topn(n);
      const core::PhaseMetrics m = experiment.metrics();
      table.row().cell(n).cell("Z bit").cell(m.response_seconds, 2)
          .cell(m.megabytes, 2).cell(m.queries);
    }
    {
      core::UniverseExperiment::Options hashed = options;
      hashed.remedy = core::RemedyMode::kHashed;
      core::UniverseExperiment experiment(hashed);
      (void)experiment.run_topn(n);
      const core::PhaseMetrics m = experiment.metrics();
      table.row().cell(n).cell("hashed DLV (Sec. 6.2.2)")
          .cell(m.response_seconds, 2).cell(m.megabytes, 2).cell(m.queries);
    }
    std::cout << "  [done] N=" << metrics::Table::with_commas(n) << "\n";
    std::cout.flush();
  }

  bench::banner("Fig. 11 (measured)");
  table.print(std::cout);

  std::cout << "\nShape to match: TXT strictly highest on all three metrics;\n"
               "Z bit within noise of (or below) the DLV baseline — it adds\n"
               "no packets and suppresses Case-2 DLV queries outright.\n"
               "Hashed DLV is also near-baseline: same query count, slightly\n"
               "different name lengths.\n";
  return 0;
}
