// NSEC3 proof-of-nonexistence CPU exhaustion (DESIGN.md §4h): a cache-
// busting client population forces the validator to spend an iterated
// SHA-1 chain on every DLV denial, and the grid measures how the modeled
// validation CPU and the benign clients' latency respond under three
// resolver postures:
//
//   attack     pre-RFC-9276 resolver (no iteration cap) with no admission
//              control — the undefended curve; validation CPU per query
//              must grow with the registry's NSEC3 iteration count.
//   rfc9276    iteration cap 150 with downgrade-to-insecure: over-cap
//              denials are accepted *unhashed*, so the validator never
//              pays the attacker's bill.
//   admission  per-client validator-CPU token buckets at the frontend:
//              clients that burn through their budget are shed with
//              SERVFAIL, so the attackers' cache-busting streams stop
//              renting the hash loop while benign clients stay answered.
//
// Every cell also re-checks the leak contract under the new denial type:
// the trace-derived ledger must equal the registry-side Case-2 count and
// every leak record must have a complete query -> resolver -> DLV span
// chain. All figures are virtual-time quantities, so BENCH_nsec3.json is
// byte-identical for any --jobs value.
//
// Flags: --jobs N (shard the cells), --smoke (smaller grid for CI),
// --out=PATH (default BENCH_nsec3.json).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/sweep.h"
#include "metrics/table.h"
#include "serve/scenario.h"

namespace {

using namespace lookaside;

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

/// One resolver/frontend posture of the sweep.
struct Mode {
  const char* name;
  std::uint16_t iteration_cap;     // 0 = no cap (pre-RFC-9276)
  std::uint64_t cpu_budget_us_per_s;  // 0 = no admission control
  std::uint64_t cpu_burst_us;
};

constexpr Mode kModes[] = {
    {"attack", 0, 0, 0},
    {"rfc9276", 150, 0, 0},
    // Budget sizing: a benign client's cold misses are bounded by the small
    // Zipf head (a few denials per client per TTL), while an attacker's
    // cache-busting stream pays one full denial per query. 9 ms of validator
    // CPU per virtual second (30 ms burst) sits between the two demand rates
    // at the top iteration rung.
    {"admission", 0, 9'000, 30'000},
};

/// One grid cell: (iterations, attack fraction, mode) served through a
/// fresh world, with per-population (benign vs attacker) accounting.
struct CellResult {
  std::uint16_t iterations = 0;
  double attack_fraction = 0.0;
  std::string mode;
  std::uint64_t queries = 0;
  serve::ScenarioSummary summary;
  std::uint64_t benign_cpu_drops = 0;
  std::uint64_t attacker_cpu_drops = 0;
  std::uint64_t benign_answered = 0;
  std::uint64_t benign_queries = 0;

  [[nodiscard]] double cpu_per_query_us() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(summary.validation_cpu_us) /
                              static_cast<double>(queries);
  }
};

serve::ScenarioOptions cell_options(std::uint16_t iterations, double fraction,
                                    const Mode& mode, bool smoke,
                                    std::size_t index) {
  serve::ScenarioOptions options;
  options.universe_size = smoke ? 2'000 : 6'000;
  options.seed = 11 + index;  // pure function of the cell index
  options.mix.clients = 8;
  options.mix.queries_per_client = smoke ? 25 : 60;
  options.mix.seed = 31 + index;
  // A small popular head keeps the benign population cache-friendly (few
  // distinct names, so few denial validations); the attackers ignore it
  // and draw uniformly over the whole universe.
  options.mix.zipf_support = 12;
  options.mix.mean_gap_us = 25'000ULL * options.mix.clients;
  options.mix.attack_fraction = fraction;

  options.dlv.nsec3_enabled = true;
  options.dlv.nsec3_iterations = iterations;
  options.dlv.nsec3_salt = {0xab, 0xcd, 0xef, 0x01};

  options.resolver_config = resolver::ResolverConfig::bind_yum();
  // 2 µs per SHA-1 invocation: large enough that a 1024-iteration chain
  // (~2 ms per probe) dominates a denial, small enough that one denial
  // stays below a round-trip.
  options.resolver_config.nsec3_hash_cost_ns = 2'000;
  options.resolver_config.nsec3_iteration_cap = mode.iteration_cap;
  options.resolver_config.nsec3_strict = false;
  options.frontend.cpu_budget_us_per_s = mode.cpu_budget_us_per_s;
  options.frontend.cpu_burst_us = mode.cpu_burst_us;
  return options;
}

CellResult run_cell(std::uint16_t iterations, double fraction,
                    const Mode& mode, bool smoke, std::size_t index,
                    obs::Tracer* tracer) {
  CellResult cell;
  cell.iterations = iterations;
  cell.attack_fraction = fraction;
  cell.mode = mode.name;

  serve::ScenarioOptions options =
      cell_options(iterations, fraction, mode, smoke, index);
  options.tracer = tracer;
  const std::uint32_t attack_start =
      workload::ClientMix(options.mix).first_attacker();
  serve::ServeScenario scenario(options);
  cell.summary = scenario.run();
  cell.queries = cell.summary.served;

  const std::vector<serve::ClientAccount>& accounts =
      scenario.frontend().clients();
  for (std::size_t client = 0; client < accounts.size(); ++client) {
    if (client < attack_start) {
      cell.benign_cpu_drops += accounts[client].cpu_drops;
      cell.benign_answered += accounts[client].answered;
      cell.benign_queries += accounts[client].queries;
    } else {
      cell.attacker_cpu_drops += accounts[client].cpu_drops;
    }
  }
  return cell;
}

std::string cell_json(const CellResult& cell, std::uint64_t ledger_case2,
                      const std::string& causes_json, bool ledger_ok) {
  const serve::ScenarioSummary& s = cell.summary;
  std::string out =
      "    {\"mode\": \"" + cell.mode +
      "\", \"iterations\": " + std::to_string(cell.iterations) +
      ", \"attack_fraction\": " + fixed(cell.attack_fraction, 2) +
      ", \"queries\": " + std::to_string(cell.queries) +
      ",\n     \"validation_cpu_us\": " + std::to_string(s.validation_cpu_us) +
      ", \"cpu_per_query_us\": " + fixed(cell.cpu_per_query_us(), 3) +
      ",\n     \"qps\": " + fixed(s.qps, 2) +
      ", \"p50_ms\": " + fixed(s.p50_ms, 3) +
      ", \"p99_ms\": " + fixed(s.p99_ms, 3) +
      ", \"benign_p99_ms\": " + fixed(s.benign_p99_ms, 3) +
      ",\n     \"overload_drops\": " + std::to_string(s.overload_drops) +
      ", \"cpu_drops\": " + std::to_string(s.cpu_drops) +
      ", \"benign_cpu_drops\": " + std::to_string(cell.benign_cpu_drops) +
      ", \"attacker_cpu_drops\": " + std::to_string(cell.attacker_cpu_drops) +
      ",\n     \"benign_answered\": " + std::to_string(cell.benign_answered) +
      ", \"benign_queries\": " + std::to_string(cell.benign_queries) +
      ", \"max_queue_depth\": " + std::to_string(s.max_queue_depth) +
      ",\n     \"case2_total\": " + std::to_string(s.case2_total) +
      ", \"distinct_leaked\": " + std::to_string(s.distinct_leaked) +
      ",\n     \"ledger\": {\"case2\": " + std::to_string(ledger_case2) +
      ", \"causes\": " + causes_json +
      ", \"chains_ok\": " + (ledger_ok ? "true" : "false") + "}}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lookaside;

  const bench::ArgParser args(argc, argv);
  const bool smoke = args.smoke();
  const std::string out_path = args.out("BENCH_nsec3.json");
  const unsigned jobs = args.jobs();

  bench::banner("NSEC3 CPU exhaustion: undefended vs RFC 9276 vs admission");
  std::cout << "Each cell serves a ClientMix with a cache-busting attacker\n"
               "population against a DLV registry whose zone signs denials\n"
               "with NSEC3 at the given iteration count. Postures: attack\n"
               "(no cap, no admission), rfc9276 (cap 150, downgrade to\n"
               "insecure), admission (per-client validator-CPU buckets).\n"
               "--jobs N shards the cells, --smoke shrinks them for CI.\n";

  const std::vector<std::uint16_t> iteration_grid =
      smoke ? std::vector<std::uint16_t>{32, 512}
            : std::vector<std::uint16_t>{16, 128, 1024};
  const std::vector<double> fraction_grid = {0.5};

  struct CellSpec {
    std::uint16_t iterations;
    double fraction;
    Mode mode;
  };
  std::vector<CellSpec> grid;
  for (const std::uint16_t iterations : iteration_grid) {
    for (const double fraction : fraction_grid) {
      for (const Mode& mode : kModes) {
        grid.push_back({iterations, fraction, mode});
      }
    }
  }

  bench::ObsSession obs_session(args.obs());
  // The ledger stays on: NSEC3 introduces a new denial path into the DLV
  // exchange, and every cell must show the trace-derived ledger agreeing
  // with the registry (the "-nsec3" cause family sums into the same
  // Case-2 total).
  obs_session.enable_ledger();

  struct GridCell {
    CellResult result;
    std::unique_ptr<bench::ShardObs> obs;
  };
  std::vector<GridCell> cells =
      engine::run_sharded(grid.size(), jobs, [&](std::size_t i) {
        GridCell cell;
        cell.obs = std::make_unique<bench::ShardObs>(obs_session,
                                                     /*primary=*/i == 0);
        cell.result = run_cell(grid[i].iterations, grid[i].fraction,
                               grid[i].mode, smoke, i, cell.obs->tracer());
        return cell;
      });

  metrics::Table table({"Mode", "Iter", "CPU us/q", "Benign p99", "CPU drops",
                        "Benign drops", "Case-2", "Ledger"});
  bool ledger_ok = true;
  std::vector<std::string> cell_jsons;
  for (GridCell& grid_cell : cells) {
    const CellResult& cell = grid_cell.result;

    const obs::LeakLedger* ledger = grid_cell.obs->ledger();
    const obs::SpanTimeline* timeline = grid_cell.obs->timeline();
    const std::uint64_t ledger_case2 =
        ledger == nullptr ? 0 : ledger->case2_total();
    bool cell_ledger_ok = true;
    if (ledger_case2 != cell.summary.case2_total) {
      std::cout << "[nsec3] FAIL: mode=" << cell.mode << " iter="
                << cell.iterations << " ledger saw " << ledger_case2
                << " Case-2 records, registry saw " << cell.summary.case2_total
                << "\n";
      cell_ledger_ok = false;
    }
    const std::size_t broken =
        ledger == nullptr ? 0
        : timeline == nullptr
            ? ledger->records().size()
            : obs::broken_leak_chains(*timeline, ledger->records());
    if (broken != 0) {
      std::cout << "[nsec3] FAIL: mode=" << cell.mode << " iter="
                << cell.iterations << " " << broken
                << " ledger records lack a complete chain\n";
      cell_ledger_ok = false;
    }
    std::string causes_json = "{";
    if (ledger != nullptr) {
      bool first = true;
      for (const auto& [cause, count] : ledger->cause_totals()) {
        if (!first) causes_json += ", ";
        first = false;
        causes_json += "\"" + cause + "\": " + std::to_string(count);
      }
    }
    causes_json += "}";
    ledger_ok = ledger_ok && cell_ledger_ok;
    grid_cell.obs->merge_into(obs_session);

    table.row()
        .cell(cell.mode)
        .cell(std::to_string(cell.iterations))
        .cell(fixed(cell.cpu_per_query_us(), 1))
        .cell(fixed(cell.summary.benign_p99_ms, 1))
        .cell(std::to_string(cell.summary.cpu_drops))
        .cell(std::to_string(cell.benign_cpu_drops))
        .cell(std::to_string(cell.summary.case2_total))
        .cell(cell_ledger_ok ? "ok" : "MISMATCH");
    cell_jsons.push_back(
        cell_json(cell, ledger_case2, causes_json, cell_ledger_ok));
  }
  table.print(std::cout);

  // ---- Contract checks: the exhaustion story must actually hold. --------
  const auto find_cell = [&](const char* mode,
                             std::uint16_t iterations) -> const CellResult* {
    for (const GridCell& grid_cell : cells) {
      if (grid_cell.result.mode == mode &&
          grid_cell.result.iterations == iterations) {
        return &grid_cell.result;
      }
    }
    return nullptr;
  };
  const std::uint16_t min_iter = iteration_grid.front();
  const std::uint16_t max_iter = iteration_grid.back();
  bool contract_ok = true;

  // (1) Undefended validation CPU per query grows with the iteration count.
  double prev_cpu = -1.0;
  for (const std::uint16_t iterations : iteration_grid) {
    const CellResult* cell = find_cell("attack", iterations);
    if (cell == nullptr || cell->cpu_per_query_us() <= prev_cpu) {
      std::cout << "[nsec3] FAIL: undefended CPU/query is not increasing in "
                   "iterations (iter=" << iterations << ")\n";
      contract_ok = false;
      break;
    }
    prev_cpu = cell->cpu_per_query_us();
  }

  const CellResult* attack_max = find_cell("attack", max_iter);
  const CellResult* attack_min = find_cell("attack", min_iter);
  const CellResult* rfc_max = find_cell("rfc9276", max_iter);
  const CellResult* adm_max = find_cell("admission", max_iter);
  if (attack_max == nullptr || attack_min == nullptr || rfc_max == nullptr ||
      adm_max == nullptr) {
    std::cout << "[nsec3] FAIL: grid is missing a contract cell\n";
    contract_ok = false;
  } else {
    // (2) RFC 9276 refuses the over-cap bill: the capped resolver spends a
    // fraction of the undefended CPU at the top rung.
    if (rfc_max->summary.validation_cpu_us * 4 >
        attack_max->summary.validation_cpu_us) {
      std::cout << "[nsec3] FAIL: rfc9276 CPU "
                << rfc_max->summary.validation_cpu_us
                << "us is not <= 1/4 of undefended "
                << attack_max->summary.validation_cpu_us << "us\n";
      contract_ok = false;
    }
    // (3) Admission control sheds the attackers, not the benign clients,
    // and cuts the total validator CPU below the undefended run.
    if (adm_max->attacker_cpu_drops == 0 || adm_max->benign_cpu_drops != 0) {
      std::cout << "[nsec3] FAIL: admission shed " << adm_max->benign_cpu_drops
                << " benign / " << adm_max->attacker_cpu_drops
                << " attacker queries (want 0 benign, >0 attacker)\n";
      contract_ok = false;
    }
    if (adm_max->summary.validation_cpu_us >=
        attack_max->summary.validation_cpu_us) {
      std::cout << "[nsec3] FAIL: admission CPU "
                << adm_max->summary.validation_cpu_us
                << "us did not drop below undefended "
                << attack_max->summary.validation_cpu_us << "us\n";
      contract_ok = false;
    }
    // (4) Both defenses hold the benign p99 near the low-iteration
    // undefended reference even at the top rung.
    const double reference_p99 = attack_min->summary.benign_p99_ms;
    for (const CellResult* defended : {rfc_max, adm_max}) {
      if (defended->summary.benign_p99_ms > reference_p99 * 2.0) {
        std::cout << "[nsec3] FAIL: " << defended->mode << " benign p99 "
                  << fixed(defended->summary.benign_p99_ms, 3)
                  << "ms exceeds 2x the low-iteration reference "
                  << fixed(reference_p99, 3) << "ms\n";
        contract_ok = false;
      }
    }
  }

  std::string json = "{\n  \"schema\": \"lookaside.bench_nsec3.v1\",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  json += "  \"iteration_cap\": 150,\n";
  json += "  \"cells\": [\n";
  for (std::size_t i = 0; i < cell_jsons.size(); ++i) {
    json += cell_jsons[i];
    json += (i + 1 < cell_jsons.size()) ? ",\n" : "\n";
  }
  json += "  ],\n  \"contract\": {\"ledger_ok\": " +
          std::string(ledger_ok ? "true" : "false") +
          ", \"contract_ok\": " + (contract_ok ? "true" : "false") + "}\n}\n";

  std::ofstream out(out_path);
  out << json;
  std::cout << "\n[nsec3] wrote " << out_path
            << (out.good() ? "" : " (WRITE FAILED)") << "\n";

  obs_session.finish(std::cout);

  if (!ledger_ok) {
    std::cout << "[nsec3] FAIL: trace-derived ledger disagrees with the "
                 "registry (see above)\n";
    return 1;
  }
  if (!contract_ok) {
    std::cout << "[nsec3] FAIL: the exhaustion/defense contract does not "
                 "hold (see above)\n";
    return 1;
  }
  std::cout << "[nsec3] contract holds: undefended CPU grows with "
               "iterations; both defenses keep the benign population "
               "served\n";
  return 0;
}
