// Shared helpers for the table/figure reproduction binaries.
//
// Every bench prints (a) the paper's table/figure as measured by this
// simulator and (b) the paper's reported numbers next to it, so shape
// comparisons are one glance. Scale can be capped for quick runs via the
// LOOKASIDE_SCALE environment variable (e.g. LOOKASIDE_SCALE=10000).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

namespace lookaside::bench {

/// Prints a section banner.
inline void banner(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n\n";
}

/// Maximum workload size: LOOKASIDE_SCALE env var, else `default_max`.
inline std::uint64_t max_scale(std::uint64_t default_max) {
  const char* env = std::getenv("LOOKASIDE_SCALE");
  if (env == nullptr) return default_max;
  const std::uint64_t parsed = std::strtoull(env, nullptr, 10);
  return parsed == 0 ? default_max : parsed;
}

/// The standard N ladder {100, 1k, 10k, ...} capped at `max`.
inline std::vector<std::uint64_t> n_ladder(std::uint64_t max) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t n = 100; n <= max; n *= 10) out.push_back(n);
  if (out.empty()) out.push_back(max);
  return out;
}

}  // namespace lookaside::bench
