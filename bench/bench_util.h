// Shared helpers for the table/figure reproduction binaries.
//
// Every bench prints (a) the paper's table/figure as measured by this
// simulator and (b) the paper's reported numbers next to it, so shape
// comparisons are one glance. Scale can be capped for quick runs via the
// LOOKASIDE_SCALE environment variable (e.g. LOOKASIDE_SCALE=10000).
//
// Observability flags (parse_obs_args / ObsSession):
//   --trace-out=t.jsonl    write the structured event stream as JSONL
//   --metrics-out=m.txt    export metrics (.json/.csv by extension,
//                          Prometheus text otherwise)
//   --ring-buffer[=N]      keep the last N events in memory (bounded)
//   --summary              print the aggregated per-server table at the end
//
// Engine-parallel drivers additionally take --jobs N (engine::parse_jobs);
// each shard owns a ShardObs bundle so metrics stay race-free and merge
// deterministically (see DESIGN.md §4d).
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/sweep.h"
#include "obs/leak_ledger.h"
#include "obs/metrics_registry.h"
#include "obs/metrics_sink.h"
#include "obs/span_timeline.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"

namespace lookaside::bench {

/// Prints a section banner.
inline void banner(const std::string& title) {
  std::cout << "\n==== " << title << " ====\n\n";
}

/// Maximum workload size: LOOKASIDE_SCALE env var, else `default_max`.
inline std::uint64_t max_scale(std::uint64_t default_max) {
  const char* env = std::getenv("LOOKASIDE_SCALE");
  if (env == nullptr) return default_max;
  const std::uint64_t parsed = std::strtoull(env, nullptr, 10);
  return parsed == 0 ? default_max : parsed;
}

/// The standard N ladder {100, 1k, 10k, ...} capped at `max`. A cap that is
/// not itself a decade point becomes the final rung, so LOOKASIDE_SCALE=5000
/// runs {100, 1000, 5000} instead of silently stopping at 1000.
inline std::vector<std::uint64_t> n_ladder(std::uint64_t max) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t n = 100; n <= max; n *= 10) out.push_back(n);
  if (out.empty() || out.back() != max) out.push_back(max);
  return out;
}

/// Strict decimal parse for flag values: the whole string must be digits.
/// Malformed input ("abc", "12abc", "", negative) prints an error naming the
/// flag and exits nonzero instead of silently coercing to a default.
inline std::uint64_t parse_u64_flag(std::string_view flag_name,
                                    std::string_view text) {
  std::uint64_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value, 10);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    std::cerr << "error: " << flag_name << " expects an unsigned integer, got '"
              << text << "'\n";
    std::exit(2);
  }
  return value;
}

/// Observability options shared by the bench drivers.
struct ObsArgs {
  std::string trace_out;        // --trace-out=<path>
  std::string metrics_out;      // --metrics-out=<path>
  std::string ledger_out;       // --ledger-out=<path> (leak ledger JSONL)
  std::string profile_out;      // --profile-out=<path> (per-query profiles)
  std::size_t ring_capacity = 0;  // --ring-buffer[=N]; 0 = off
  bool summary = false;         // --summary

  [[nodiscard]] bool any() const {
    return !trace_out.empty() || !metrics_out.empty() ||
           !ledger_out.empty() || !profile_out.empty() || ring_capacity > 0 ||
           summary;
  }
};

/// Parses the observability flags; unknown arguments are ignored so each
/// bench stays free to define its own.
inline ObsArgs parse_obs_args(int argc, char** argv) {
  ObsArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      out.trace_out = std::string(arg.substr(12));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      out.metrics_out = std::string(arg.substr(14));
    } else if (arg.rfind("--ledger-out=", 0) == 0) {
      out.ledger_out = std::string(arg.substr(13));
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      out.profile_out = std::string(arg.substr(14));
    } else if (arg == "--ring-buffer") {
      out.ring_capacity = std::size_t{1} << 16;
    } else if (arg.rfind("--ring-buffer=", 0) == 0) {
      const std::uint64_t n = parse_u64_flag("--ring-buffer", arg.substr(14));
      out.ring_capacity = n == 0 ? std::size_t{1} << 16
                                 : static_cast<std::size_t>(n);
    } else if (arg == "--summary") {
      out.summary = true;
    }
  }
  return out;
}

/// The one flag parser every driver shares. Wraps the observability flags
/// (parse_obs_args) and --jobs (engine::parse_jobs) that used to be parsed
/// in per-driver copies, plus the common booleans (--smoke, --quick) and
/// --out=PATH; driver-specific extras are declared at construction and read
/// through flag()/value() so no driver grows its own argv loop again. An
/// undeclared `--flag` is a usage error: it prints the accepted set to
/// stderr and exits 2 instead of being silently ignored (a typo like
/// --smokee must not quietly run the full-size sweep).
class ArgParser {
 public:
  ArgParser(int argc, char** argv,
            std::initializer_list<std::string_view> extra_flags = {})
      : args_(argv + 1, argv + argc),
        obs_(parse_obs_args(argc, argv)),
        jobs_(engine::parse_jobs(argc, argv)) {
    reject_unknown(extra_flags);
  }

  [[nodiscard]] const ObsArgs& obs() const { return obs_; }
  [[nodiscard]] unsigned jobs() const { return jobs_; }
  [[nodiscard]] bool smoke() const { return flag("smoke"); }
  [[nodiscard]] bool quick() const { return flag("quick"); }
  [[nodiscard]] std::string out(std::string fallback) const {
    return value("out", std::move(fallback));
  }

  /// True when `--<name>` was given.
  [[nodiscard]] bool flag(std::string_view name) const {
    for (const std::string& arg : args_) {
      if (arg.size() == name.size() + 2 && arg.compare(0, 2, "--") == 0 &&
          arg.compare(2, name.size(), name) == 0) {
        return true;
      }
    }
    return false;
  }

  /// Value of the last `--<name>=V` parsed as a strict unsigned decimal, or
  /// `fallback` when the flag is absent. Malformed values error out via
  /// parse_u64_flag instead of being coerced.
  [[nodiscard]] std::uint64_t numeric(std::string_view name,
                                      std::uint64_t fallback) const {
    const std::string text = value(name);
    if (text.empty() && !flag_with_value_present(name)) return fallback;
    return parse_u64_flag(std::string("--") + std::string(name), text);
  }

  /// Value of the last `--<name>=V`, or `fallback` when absent.
  [[nodiscard]] std::string value(std::string_view name,
                                  std::string fallback = {}) const {
    std::string result = std::move(fallback);
    for (const std::string& arg : args_) {
      if (arg.compare(0, 2, "--") == 0 &&
          arg.compare(2, name.size(), name) == 0 &&
          arg.size() > name.size() + 2 && arg[name.size() + 2] == '=') {
        result = arg.substr(name.size() + 3);
      }
    }
    return result;
  }

 private:
  /// Exits 2 on any `--flag` outside the builtin + declared sets. The
  /// two-token `--jobs N` form consumes its value token.
  void reject_unknown(std::initializer_list<std::string_view> extra) const {
    static constexpr std::string_view kBuiltin[] = {
        "smoke",      "quick",       "out",        "jobs",
        "trace-out",  "metrics-out", "ledger-out", "profile-out",
        "ring-buffer", "summary"};
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const std::string& arg = args_[i];
      if (arg.rfind("--", 0) != 0) continue;
      std::string_view name = std::string_view(arg).substr(2);
      if (const auto eq = name.find('='); eq != std::string_view::npos) {
        name = name.substr(0, eq);
      }
      if (arg == "--jobs") ++i;  // skip the separate value token
      bool known = false;
      for (const std::string_view builtin : kBuiltin) {
        known = known || builtin == name;
      }
      for (const std::string_view declared : extra) {
        known = known || declared == name;
      }
      if (known) continue;
      std::cerr << "error: unknown flag '--" << name
                << "'; accepted: --smoke --quick --out=PATH --jobs=N "
                   "--trace-out=PATH --metrics-out=PATH --ledger-out=PATH "
                   "--profile-out=PATH --ring-buffer[=N] --summary";
      for (const std::string_view declared : extra) {
        std::cerr << " --" << declared;
      }
      std::cerr << "\n";
      std::exit(2);
    }
  }

  /// True when `--<name>=...` appeared at all (even with an empty value),
  /// so numeric() can distinguish "absent" from "present but empty" — the
  /// latter is a user error that must not silently become the fallback.
  [[nodiscard]] bool flag_with_value_present(std::string_view name) const {
    for (const std::string& arg : args_) {
      if (arg.compare(0, 2, "--") == 0 &&
          arg.compare(2, name.size(), name) == 0 &&
          arg.size() > name.size() + 2 && arg[name.size() + 2] == '=') {
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> args_;
  ObsArgs obs_;
  unsigned jobs_;
};

/// Owns the tracer + sinks a bench attaches to its experiment. With no
/// flags given, `tracer()` is nullptr and the run is unobserved (no cost).
class ObsSession {
 public:
  explicit ObsSession(ObsArgs args) : args_(std::move(args)) {
    if (!args_.trace_out.empty()) {
      jsonl_ = std::make_shared<obs::JsonlFileSink>(args_.trace_out);
      tracer_.add_sink(jsonl_);
    }
    if (!args_.metrics_out.empty()) {
      metrics_sink_ = std::make_shared<obs::MetricsSink>(registry_);
      tracer_.add_sink(metrics_sink_);
    }
    if (args_.ring_capacity > 0) {
      ring_ = std::make_shared<obs::RingBufferSink>(args_.ring_capacity);
      tracer_.add_sink(ring_);
    }
    if (args_.summary) {
      summary_ = std::make_shared<obs::SummarySink>();
      tracer_.add_sink(summary_);
    }
    if (!args_.ledger_out.empty()) enable_ledger();
    if (!args_.profile_out.empty()) enable_profiles();
  }

  /// Turns the leak ledger on even without --ledger-out (the cache/serve
  /// benches always account causes so their JSON can carry the breakdown).
  /// Adds a session-level ledger + timeline to the shared tracer for
  /// single-tracer drivers; sharded drivers get per-shard copies via
  /// ShardObs and merge them back in shard order.
  void enable_ledger() {
    if (ledger_sink_ != nullptr) return;
    ledger_sink_ = std::make_shared<obs::LeakLedger>();
    tracer_.add_sink(ledger_sink_);
    ensure_timeline();
  }

  /// Per-query critical-path profiles (implied by --profile-out).
  void enable_profiles() {
    profiles_requested_ = true;
    ensure_timeline();
  }

  /// Tracer to hand to the experiment; nullptr when no sinks were asked for.
  [[nodiscard]] obs::Tracer* tracer() {
    return tracer_.has_sinks() ? &tracer_ : nullptr;
  }

  /// Attaches the session's stream sinks (JSONL, ring, summary) to a
  /// shard-private tracer. Exactly one shard per sweep may call this — the
  /// stream sinks are single-writer.
  void attach_stream_sinks(obs::Tracer& tracer) {
    if (jsonl_ != nullptr) tracer.add_sink(jsonl_);
    if (ring_ != nullptr) tracer.add_sink(ring_);
    if (summary_ != nullptr) tracer.add_sink(summary_);
  }

  [[nodiscard]] bool stream_sinks_requested() const {
    return jsonl_ != nullptr || ring_ != nullptr || summary_ != nullptr;
  }

  [[nodiscard]] obs::MetricsRegistry& registry() { return registry_; }
  [[nodiscard]] bool metrics_enabled() const { return metrics_sink_ != nullptr; }
  [[nodiscard]] bool ledger_enabled() const { return ledger_sink_ != nullptr; }
  [[nodiscard]] bool profiles_enabled() const { return profiles_requested_; }
  [[nodiscard]] obs::RingBufferSink* ring() { return ring_.get(); }

  /// The merged cross-shard ledger. Single-tracer drivers see the session
  /// sink folded in by finish(); sharded drivers populate it through
  /// ShardObs::merge_into() in shard order.
  [[nodiscard]] obs::LeakLedger& merged_ledger() { return merged_ledger_; }

  /// Appends one shard/timeline's query profiles (serialized, in query
  /// order) to the session profile stream.
  void append_profiles(const obs::SpanTimeline& timeline) {
    for (const obs::QueryProfile& profile : timeline.query_profiles()) {
      profile_lines_.push_back(obs::profile_jsonl(profile));
    }
  }

  /// Flushes sinks, writes the metrics file and reports what was produced.
  void finish(std::ostream& out) {
    if (!tracer_.has_sinks()) return;
    tracer_.flush();
    if (ledger_sink_ != nullptr) merged_ledger_.merge_from(*ledger_sink_);
    if (timeline_sink_ != nullptr && profiles_requested_) {
      append_profiles(timeline_sink_->timeline());
    }
    out << "\n";
    if (jsonl_ != nullptr) {
      out << "[obs] trace: " << args_.trace_out << " ("
          << jsonl_->events_written() << " events"
          << (jsonl_->ok() ? "" : "; WRITE FAILED") << ")\n";
    }
    if (!args_.metrics_out.empty()) {
      // Lost-event accounting rides in the same export: a nonzero
      // obs_trace_dropped means the trace under-reports and every derived
      // artifact (ledger, profiles) inherits that caveat.
      if (ring_ != nullptr && ring_->dropped() > 0) {
        registry_.add("obs_trace_dropped", {{"sink", "ring"}},
                      ring_->dropped());
      }
      if (jsonl_ != nullptr && jsonl_->dropped() > 0) {
        registry_.add("obs_trace_dropped", {{"sink", "jsonl"}},
                      jsonl_->dropped());
      }
      if (ledger_enabled()) merged_ledger_.export_to(registry_);
      out << "[obs] metrics: " << args_.metrics_out
          << (registry_.write_file(args_.metrics_out) ? "" : " (WRITE FAILED)")
          << "\n";
    }
    if (!args_.ledger_out.empty()) {
      out << "[obs] ledger: " << args_.ledger_out << " ("
          << merged_ledger_.case2_total() << " case-2 records"
          << (merged_ledger_.write_file(args_.ledger_out) ? ""
                                                          : "; WRITE FAILED")
          << ")\n";
    }
    if (!args_.profile_out.empty()) {
      out << "[obs] profiles: " << args_.profile_out << " ("
          << profile_lines_.size() << " queries"
          << (write_profiles(args_.profile_out) ? "" : "; WRITE FAILED")
          << ")\n";
    }
    if (ring_ != nullptr) {
      out << "[obs] ring buffer: " << ring_->size() << " buffered, "
          << ring_->dropped() << " overwritten of " << ring_->total_seen()
          << " seen\n";
    }
    if (summary_ != nullptr) summary_->print(out);
  }

 private:
  void ensure_timeline() {
    if (timeline_sink_ != nullptr) return;
    timeline_sink_ = std::make_shared<obs::TimelineSink>();
    tracer_.add_sink(timeline_sink_);
  }

  [[nodiscard]] bool write_profiles(const std::string& path) const {
    std::ofstream file(path, std::ios::trunc);
    if (!file) return false;
    for (const std::string& line : profile_lines_) file << line << "\n";
    return file.good();
  }

  ObsArgs args_;
  obs::Tracer tracer_;
  obs::MetricsRegistry registry_;
  std::shared_ptr<obs::JsonlFileSink> jsonl_;
  std::shared_ptr<obs::MetricsSink> metrics_sink_;
  std::shared_ptr<obs::RingBufferSink> ring_;
  std::shared_ptr<obs::SummarySink> summary_;
  std::shared_ptr<obs::LeakLedger> ledger_sink_;
  std::shared_ptr<obs::TimelineSink> timeline_sink_;
  obs::LeakLedger merged_ledger_;
  std::vector<std::string> profile_lines_;
  bool profiles_requested_ = false;
};

/// Per-shard observability bundle for engine-parallel sweeps. Every shard
/// that wants tracing owns one: a private Tracer plus a private
/// MetricsRegistry (when the session exports metrics), so worker threads
/// never share a mutable sink. The designated primary shard additionally
/// carries the session's stream sinks (JSONL trace, ring buffer, summary),
/// which therefore stay single-writer. After the engine's deterministic
/// merge, call merge_into() in shard order so the exported metrics are
/// byte-identical for any --jobs value.
class ShardObs {
 public:
  ShardObs(ObsSession& session, bool primary) {
    if (session.metrics_enabled()) {
      metrics_sink_ = std::make_shared<obs::MetricsSink>(registry_);
      tracer_.add_sink(metrics_sink_);
    }
    if (session.ledger_enabled()) {
      ledger_ = std::make_shared<obs::LeakLedger>();
      tracer_.add_sink(ledger_);
    }
    if (session.ledger_enabled() || session.profiles_enabled()) {
      timeline_ = std::make_shared<obs::TimelineSink>();
      tracer_.add_sink(timeline_);
    }
    if (primary) session.attach_stream_sinks(tracer_);
  }

  /// Tracer for this shard's experiment; nullptr when nothing listens.
  [[nodiscard]] obs::Tracer* tracer() {
    return tracer_.has_sinks() ? &tracer_ : nullptr;
  }

  /// This shard's private registry when the session exports metrics, else
  /// nullptr. Hand it to components that emit series directly (e.g. the
  /// serving frontend's shard-labeled counters); merge_into() folds it in.
  [[nodiscard]] obs::MetricsRegistry* metrics() {
    return metrics_sink_ == nullptr ? nullptr : &registry_;
  }

  /// This shard's ledger / timeline, for per-cell acceptance checks before
  /// the merge. Null unless the session enabled the corresponding feature.
  [[nodiscard]] obs::LeakLedger* ledger() { return ledger_.get(); }
  [[nodiscard]] const obs::SpanTimeline* timeline() const {
    return timeline_ == nullptr ? nullptr : &timeline_->timeline();
  }

  /// Folds this shard's metrics, ledger and profiles into the session
  /// (main thread; call in shard order for byte-identical output).
  void merge_into(ObsSession& session) {
    tracer_.flush();
    session.registry().merge_from(registry_);
    if (ledger_ != nullptr) session.merged_ledger().merge_from(*ledger_);
    if (timeline_ != nullptr && session.profiles_enabled()) {
      session.append_profiles(timeline_->timeline());
    }
  }

 private:
  obs::Tracer tracer_;
  obs::MetricsRegistry registry_;
  std::shared_ptr<obs::MetricsSink> metrics_sink_;
  std::shared_ptr<obs::LeakLedger> ledger_;
  std::shared_ptr<obs::TimelineSink> timeline_;
};

}  // namespace lookaside::bench
