// Machine-readable performance suite for the hot paths the sweep engine
// and the hashed resolver cache optimize (PERF baseline tracking).
//
// Measures, with wall-clock timing:
//   - name.parse_ns:  dns::Name::parse over a realistic domain corpus
//   - name.hash_ns:   cached canonical-hash access on constructed names
//   - name.intern_ns: steady-state NameArena intern (the dedup path)
//   - cache.probe_hit_ns:            positive-cache hit probes
//   - cache.arena_probe_hit_ns:      bare retuned NameHashMap probe hits
//   - cache.probe_negative_nsec_ns:  aggressive NSEC coverage probes
//   - verify.batch_lookup_ns:        VerifyBatch memo hit (a deduped RSA)
//   - verify.batch_unique / batch_deduped: exact virtual counts from a
//     fixed churn workload — the gate holds these exactly, so a change in
//     how many RSA verifications batching skips cannot land silently
//   - resolutions/sec for a fixed grid of independent experiments, run
//     once at --jobs 1 and once at --jobs N, with the speedup ratio
//
// and writes them as BENCH_perf.json (schema "lookaside.bench_perf.v3",
// documented in EXPERIMENTS.md) so CI can diff runs across commits.
//
// Parallel speedup is only meaningful when the host actually has cores to
// scale onto: on a single-hardware-thread runner the "parallel" leg is a
// context-switching re-measurement of the serial one, so the JSON records
// hardware_concurrency up front, emits "speedup": null with
// "parallelism_authoritative": false, and the CI gate skips the speedup
// band entirely (FlatJson ignores null values).
//
// Flags: --jobs N (worker threads for the parallel leg; default hardware
// concurrency), --out=PATH (default BENCH_perf.json), --quick (smaller
// workloads for CI smoke jobs). LOOKASIDE_SCALE caps the resolution grid.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "crypto/verify_batch.h"
#include "dns/name.h"
#include "dns/name_arena.h"
#include "dns/record.h"
#include "engine/sweep.h"
#include "metrics/table.h"
#include "resolver/cache.h"
#include "resolver/resolver.h"
#include "sim/clock.h"

namespace {

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

/// Keeps a computed value alive so timed loops are not optimized away.
void sink(std::uint64_t value) {
  volatile std::uint64_t keep = value;
  (void)keep;
}

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

/// A corpus of plausible second-level + host names.
std::vector<std::string> make_corpus(std::size_t count) {
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back("host" + std::to_string(i % 97) + ".Example" +
                  std::to_string(i) + ".COM");
  }
  return out;
}

struct ThroughputLeg {
  std::uint64_t resolutions = 0;
  double seconds = 0;
  double rate = 0;  // resolutions per second
};

/// Runs `cells` independent top-N experiments through the engine at the
/// given job count and reports aggregate resolution throughput.
ThroughputLeg run_throughput(std::size_t cells, std::uint64_t n,
                             unsigned jobs) {
  using namespace lookaside;
  const auto start = WallClock::now();
  const std::vector<std::uint64_t> leaked = engine::run_sharded(
      cells, jobs, [&](std::size_t i) {
        core::UniverseExperiment::Options options;
        options.universe_size = std::max<std::uint64_t>(n, 10'000);
        options.seed = 7 + i;  // distinct worlds, same workload size
        core::UniverseExperiment experiment(options);
        return experiment.run_topn(n).distinct_leaked_domains;
      });
  ThroughputLeg leg;
  leg.seconds = seconds_since(start);
  leg.resolutions = static_cast<std::uint64_t>(cells) * n;
  leg.rate = leg.seconds > 0 ? static_cast<double>(leg.resolutions) /
                                   leg.seconds
                             : 0;
  std::uint64_t checksum = 0;
  for (const std::uint64_t v : leaked) checksum += v;
  sink(checksum);
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lookaside;

  const bench::ArgParser args(argc, argv);
  const bool quick = args.quick();
  const std::string out_path = args.out("BENCH_perf.json");
  const unsigned jobs = args.jobs();
  const unsigned cores = std::thread::hardware_concurrency();
  // One hardware thread cannot demonstrate parallel scaling; everything
  // downstream (table, JSON, CI gate) treats the speedup as unmeasured.
  const bool parallelism_authoritative = cores > 1;

  bench::banner("Performance suite: hot-path latencies and sweep throughput");
  std::cout << "Host: " << cores << " hardware thread(s); parallel speedup "
            << (parallelism_authoritative ? "is authoritative here.\n"
                                          : "is NOT authoritative here.\n");

  // --- dns::Name parse + memoized hash ----------------------------------
  const std::size_t corpus_size = quick ? 2'000 : 20'000;
  const std::size_t parse_rounds = quick ? 5 : 25;
  const std::vector<std::string> corpus = make_corpus(corpus_size);

  auto start = WallClock::now();
  std::uint64_t checksum = 0;
  for (std::size_t round = 0; round < parse_rounds; ++round) {
    for (const std::string& text : corpus) {
      checksum += dns::Name::parse(text).hash();
    }
  }
  const double parse_ns = seconds_since(start) * 1e9 /
                          static_cast<double>(corpus_size * parse_rounds);
  sink(checksum);

  std::vector<dns::Name> names;
  names.reserve(corpus_size);
  for (const std::string& text : corpus) names.push_back(dns::Name::parse(text));

  const std::size_t hash_rounds = quick ? 200 : 2'000;
  start = WallClock::now();
  checksum = 0;
  for (std::size_t round = 0; round < hash_rounds; ++round) {
    for (const dns::Name& name : names) checksum += name.hash();
  }
  const double hash_ns = seconds_since(start) * 1e9 /
                         static_cast<double>(corpus_size * hash_rounds);
  sink(checksum);

  // --- name interning arena (§4k) ----------------------------------------
  dns::NameArena arena;
  for (const dns::Name& name : names) (void)arena.intern(name);
  const std::size_t intern_rounds = quick ? 100 : 1'000;
  start = WallClock::now();
  checksum = 0;
  for (std::size_t round = 0; round < intern_rounds; ++round) {
    for (const dns::Name& name : names) checksum += arena.intern(name);
  }
  const double intern_ns = seconds_since(start) * 1e9 /
                           static_cast<double>(corpus_size * intern_rounds);
  sink(checksum);

  // Bare NameHashMap probe hit through the arena index: no cache sections,
  // no TTL checks — the number the <30ns probe-hit target is judged on.
  start = WallClock::now();
  checksum = 0;
  for (std::size_t round = 0; round < intern_rounds; ++round) {
    for (const dns::Name& name : names) checksum += arena.find(name);
  }
  const double arena_probe_ns =
      seconds_since(start) * 1e9 /
      static_cast<double>(corpus_size * intern_rounds);
  sink(checksum);

  // --- resolver cache probes ---------------------------------------------
  sim::SimClock clock;
  resolver::ResolverCache cache(clock);
  for (const dns::Name& name : names) {
    dns::RRset rrset(name, dns::RRType::kA);
    rrset.add(dns::ResourceRecord::make(name, 3600, dns::ARdata{0x5DB8D822}));
    cache.store(rrset, /*validated=*/false);
  }
  const std::size_t probe_rounds = quick ? 20 : 200;
  start = WallClock::now();
  checksum = 0;
  for (std::size_t round = 0; round < probe_rounds; ++round) {
    for (const dns::Name& name : names) {
      checksum += cache.find(name, dns::RRType::kA) != nullptr;
    }
  }
  const double probe_hit_ns = seconds_since(start) * 1e9 /
                              static_cast<double>(corpus_size * probe_rounds);
  sink(checksum);

  // Aggressive NSEC chain: owners at even indices, probes at odd indices
  // (every probe lands strictly between two chain entries -> kNameCovered).
  const dns::Name zone = dns::Name::parse("example");
  const std::size_t chain_size = quick ? 500 : 5'000;
  std::vector<dns::Name> covered;
  covered.reserve(chain_size);
  for (std::size_t i = 0; i < chain_size; ++i) {
    char owner[32];
    std::snprintf(owner, sizeof owner, "n%06zu.example", 2 * i);
    char next[32];
    std::snprintf(next, sizeof next, "n%06zu.example", 2 * i + 2);
    cache.store_nsec(
        zone, dns::ResourceRecord::make(
                  dns::Name::parse(owner), 3600,
                  dns::NsecRdata{dns::Name::parse(next), {dns::RRType::kA}}));
    char probe[32];
    std::snprintf(probe, sizeof probe, "n%06zu.example", 2 * i + 1);
    covered.push_back(dns::Name::parse(probe));
  }
  const std::size_t nsec_rounds = quick ? 20 : 200;
  start = WallClock::now();
  checksum = 0;
  for (std::size_t round = 0; round < nsec_rounds; ++round) {
    for (const dns::Name& name : covered) {
      checksum += cache
                      .find_denial(zone, name, dns::RRType::kA,
                                   resolver::DenialSources::kSpans)
                      .coverage == resolver::DenialKind::kNxDomain;
    }
  }
  const double probe_nsec_ns = seconds_since(start) * 1e9 /
                               static_cast<double>(chain_size * nsec_rounds);
  sink(checksum);

  // --- batched RSA verification (§4k) ------------------------------------
  // Memo-hit latency: the cost a deduped verification pays instead of the
  // modular exponentiation (compare crypto.rsa_verify_ns ~ microseconds).
  crypto::VerifyBatch batch;
  {
    crypto::VerifyBatchScope scope(batch);
    for (std::uint64_t k = 0; k < 64; ++k) {
      batch.record(k * 0x9E3779B97F4A7C15ULL, true);
    }
    const std::size_t lookup_rounds = quick ? 200'000 : 2'000'000;
    start = WallClock::now();
    checksum = 0;
    for (std::size_t i = 0; i < lookup_rounds; ++i) {
      checksum += batch.lookup((i % 64) * 0x9E3779B97F4A7C15ULL).value_or(false);
    }
    sink(checksum);
  }
  const double batch_lookup_ns =
      seconds_since(start) * 1e9 / static_cast<double>(quick ? 200'000 : 2'000'000);

  // Exact dedupe counts on a fixed churn-style workload with the verdict
  // cache off: every skipped verification here is the within-resolution
  // batch alone (NSEC RRsets verified for validation and again when cached,
  // DNSKEY self-sig re-checks). Virtual-clock deterministic, so the gate
  // compares these exactly.
  std::uint64_t batch_unique = 0;
  std::uint64_t batch_deduped = 0;
  {
    core::UniverseExperiment::Options churn_options;
    churn_options.universe_size = 10'000;
    churn_options.resolver_config = resolver::ResolverConfig::bind_yum();
    churn_options.resolver_config.ns_fetch_probability = 0.0;
    core::UniverseExperiment churn(churn_options);
    for (std::uint64_t round = 0; round < 2; ++round) {
      for (std::uint64_t rank = 1; rank <= 40; ++rank) {
        (void)churn.stub().visit(churn.world().universe().domain_at(rank));
      }
      // Miss traffic: nonexistent SLDs under the signed TLDs. The chained
      // NXDOMAIN is where the within-resolution repeat lives — the authority
      // NSECs are verified once for validation and once more when cached
      // (resolver.cpp validate_response + cache_validated_nsecs).
      for (std::uint64_t rank = 1; rank <= 8; ++rank) {
        const dns::Name tld =
            churn.world().universe().domain_at(rank).parent();
        (void)churn.stub().visit(tld.with_prefix_label(
            "nxprobe-" + std::to_string(round) + "-" + std::to_string(rank)));
      }
      churn.clock().advance_seconds(2'100.0);
    }
    const auto& counters = churn.resolver().validator().counters();
    batch_unique = counters.value("verify.batch_unique");
    batch_deduped = counters.value("verify.batch_deduped");
  }

  // --- end-to-end resolution throughput, single vs. sharded --------------
  const std::size_t cells = quick ? 4 : 8;
  const std::uint64_t n = quick ? 300 : bench::max_scale(1'000);
  std::cout << "Throughput grid: " << cells << " independent experiments x "
            << n << " resolutions each.\n";
  const ThroughputLeg single = run_throughput(cells, n, /*jobs=*/1);
  const ThroughputLeg parallel = run_throughput(cells, n, jobs);
  const double speedup = single.rate > 0 ? parallel.rate / single.rate : 0;

  metrics::Table table({"Metric", "Value"});
  table.row().cell("name parse (ns)").cell(fixed(parse_ns, 1));
  table.row().cell("name cached hash (ns)").cell(fixed(hash_ns, 2));
  table.row().cell("name intern, steady state (ns)").cell(fixed(intern_ns, 1));
  table.row().cell("cache probe hit (ns)").cell(fixed(probe_hit_ns, 1));
  table.row().cell("arena map probe hit (ns)").cell(fixed(arena_probe_ns, 1));
  table.row().cell("NSEC cover probe (ns)").cell(fixed(probe_nsec_ns, 1));
  table.row().cell("batch verify memo hit (ns)").cell(fixed(batch_lookup_ns, 1));
  table.row()
      .cell("churn RSA verifies unique/deduped")
      .cell(std::to_string(batch_unique) + " / " +
            std::to_string(batch_deduped));
  table.row()
      .cell("resolutions/sec (1 thread)")
      .cell(fixed(single.rate, 0));
  table.row()
      .cell("resolutions/sec (" + std::to_string(jobs) + " jobs)")
      .cell(fixed(parallel.rate, 0));
  table.row()
      .cell("hardware threads")
      .cell(std::to_string(cores));
  table.row()
      .cell("speedup")
      .cell(parallelism_authoritative ? fixed(speedup, 2) + "x"
                                      : "n/a (1 core)");
  table.print(std::cout);

  const std::string json =
      std::string("{\n") +
      "  \"schema\": \"lookaside.bench_perf.v3\",\n" +
      "  \"hardware_concurrency\": " + std::to_string(cores) + ",\n" +
      "  \"jobs\": " + std::to_string(jobs) + ",\n" +
      "  \"single_thread\": {\"resolutions\": " +
      std::to_string(single.resolutions) + ", \"seconds\": " +
      fixed(single.seconds, 4) + ", \"resolutions_per_sec\": " +
      fixed(single.rate, 1) + "},\n" +
      "  \"parallel\": {\"jobs\": " + std::to_string(jobs) +
      ", \"resolutions\": " + std::to_string(parallel.resolutions) +
      ", \"seconds\": " + fixed(parallel.seconds, 4) +
      ", \"resolutions_per_sec\": " + fixed(parallel.rate, 1) +
      ", \"speedup\": " +
      (parallelism_authoritative ? fixed(speedup, 2) : "null") +
      ", \"parallelism_authoritative\": " +
      (parallelism_authoritative ? "true" : "false") + "},\n" +
      "  \"cache\": {\"probe_hit_ns\": " + fixed(probe_hit_ns, 2) +
      ", \"arena_probe_hit_ns\": " + fixed(arena_probe_ns, 2) +
      ", \"probe_negative_nsec_ns\": " + fixed(probe_nsec_ns, 2) + "},\n" +
      "  \"name\": {\"parse_ns\": " + fixed(parse_ns, 2) +
      ", \"hash_ns\": " + fixed(hash_ns, 3) +
      ", \"intern_ns\": " + fixed(intern_ns, 2) + "},\n" +
      "  \"verify\": {\"batch_lookup_ns\": " + fixed(batch_lookup_ns, 2) +
      ", \"batch_unique\": " + std::to_string(batch_unique) +
      ", \"batch_deduped\": " + std::to_string(batch_deduped) + "}\n" +
      "}\n";
  std::ofstream out(out_path);
  out << json;
  std::cout << "\n[perf] wrote " << out_path
            << (out.good() ? "" : " (WRITE FAILED)") << "\n";
  return 0;
}
