// Reproduces Table 4: the number of DNS queries of each type issued while
// resolving the top-{100, 1k, 10k, 100k} domains.
//
// Paper reference rows (A / AAAA / DNSKEY / DS / NS / PTR):
//   100:     467 /    243 /    32 /     221 /     36 /   2
//   1k:    4,032 /  1,881 /    96 /   1,963 /    285 /  13
//   10k:  30,972 / 10,566 /   390 /  18,582 /  2,701 /  43
//   100k:283,949 / 66,498 / 3,264 / 203,683 / 33,402 / 331
//
// Shape to match: A largest (glue chasing + iteration), AAAA roughly half,
// DS scaling with domains (per-delegation checks), DNSKEY strongly
// sub-linear (per-zone, cached), NS small, PTR tiny.
#include <iostream>

#include "bench_util.h"
#include "core/experiment.h"
#include "core/overhead.h"
#include "metrics/table.h"

int main() {
  using namespace lookaside;

  bench::banner("Table 4: number of DNS queries by type");

  const std::uint64_t max_n = bench::max_scale(100'000);
  metrics::Table table({"#Domains", "A", "AAAA", "DNSKEY", "DS", "NS", "PTR",
                        "TXT", "DLV"});

  for (const std::uint64_t n : bench::n_ladder(std::min<std::uint64_t>(
           max_n, 100'000))) {
    core::UniverseExperiment::Options options;
    core::UniverseExperiment experiment(options);
    (void)experiment.run_topn(n);
    const auto counts = core::query_type_counts(experiment.network());
    auto value = [&counts](const char* key) -> std::uint64_t {
      const auto it = counts.find(key);
      return it == counts.end() ? 0 : it->second;
    };
    table.row()
        .cell(n)
        .cell(value("A"))
        .cell(value("AAAA"))
        .cell(value("DNSKEY"))
        .cell(value("DS"))
        .cell(value("NS"))
        .cell(value("PTR"))
        .cell(value("TXT"))
        .cell(value("DLV"));
    std::cout << "  [done] N=" << metrics::Table::with_commas(n) << "\n";
    std::cout.flush();
  }

  bench::banner("Table 4 (measured)");
  table.print(std::cout);

  std::cout << "\nPaper's Table 4 for comparison:\n"
               "| #Domains |       A |   AAAA | DNSKEY |      DS |     NS | PTR |\n"
               "|      100 |     467 |    243 |     32 |     221 |     36 |   2 |\n"
               "|       1k |   4,032 |  1,881 |     96 |   1,963 |    285 |  13 |\n"
               "|      10k |  30,972 | 10,566 |    390 |  18,582 |  2,701 |  43 |\n"
               "|     100k | 283,949 | 66,498 |  3,264 | 203,683 | 33,402 | 331 |\n";
  return 0;
}
