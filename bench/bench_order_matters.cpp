// Reproduces §5.1 "Order Matters": shuffling the same top-100 domain list
// changes WHICH domains leak, because aggressive negative caching
// suppresses a query exactly when an *earlier* query fetched an NSEC range
// covering it ("If there are two domains that can be proved to be
// non-existent by the same NSEC record, only the first domain will be
// queried with DLV").
//
// Paper reference: three shuffled trials of the top-100 produced 82%, 84%
// and 77% leakage.
//
// A finding this reproduction makes explicit: with idealized caching (no
// TTL expiry inside the run) the leaked COUNT is order-invariant — it
// equals the number of distinct NSEC gaps the query set touches — while the
// leaked SET varies. The paper's count variation appears once cache entries
// can expire mid-run, which the second table shows with a short negative
// TTL.
#include <algorithm>
#include <iostream>
#include <set>

#include "bench_util.h"
#include "core/experiment.h"
#include "metrics/table.h"

namespace {

struct Trial {
  std::string label;
  lookaside::core::LeakageReport report;
  std::set<std::string> leaked;
};

Trial run_trial(const std::string& label, std::uint64_t n,
                std::uint64_t shuffle_seed, std::uint32_t negative_ttl) {
  lookaside::core::UniverseExperiment::Options options;
  options.dlv_negative_ttl = negative_ttl;
  lookaside::core::UniverseExperiment experiment(options);
  Trial trial;
  trial.label = label;
  trial.report = shuffle_seed == 0
                     ? experiment.run_topn(n)
                     : experiment.run_topn_shuffled(n, shuffle_seed);
  trial.leaked = experiment.analyzer().leaked_domains();
  return trial;
}

std::size_t set_difference_size(const std::set<std::string>& a,
                                const std::set<std::string>& b) {
  std::size_t out = 0;
  for (const auto& item : a) out += b.count(item) == 0;
  return out;
}

void run_block(std::uint64_t n, std::uint32_t ttl, const char* heading) {
  lookaside::bench::banner(heading);
  std::vector<Trial> trials;
  trials.push_back(run_trial("rank order", n, 0, ttl));
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    trials.push_back(
        run_trial("shuffle seed " + std::to_string(seed), n, seed, ttl));
  }
  lookaside::metrics::Table table(
      {"Order", "Leaked", "Leaked %", "Only in this order (vs rank order)"});
  for (const Trial& trial : trials) {
    table.row()
        .cell(trial.label)
        .cell(trial.report.distinct_leaked_domains)
        .percent_cell(trial.report.leaked_proportion())
        .cell(static_cast<std::uint64_t>(
            set_difference_size(trial.leaked, trials.front().leaked)));
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace lookaside;

  std::cout << "Same 100 domains, different visit orders; fresh resolver and\n"
               "caches per trial. Paper: 82% / 84% / 77%.\n";

  run_block(100, 3600,
            "Top-100 trials, negative TTL 3600 s (no expiry inside the run)");
  std::cout
      << "\nWith no expiry the count equals the number of distinct NSEC gaps\n"
         "touched — an order-invariant — while the last column shows the\n"
         "leaked SET shifting between orders (the paper's mechanism).\n";

  run_block(100, 10,
            "Top-100 trials, negative TTL 10 s (expiry inside the run)");
  std::cout
      << "\nWith cache entries expiring mid-run, the count itself varies by\n"
         "order, reproducing the paper's 77-84% spread mechanism.\n";
  return 0;
}
