// Reproduces §6.2.4: dictionary attacks against the privacy-preserving
// (hashed) DLV remedy.
//
// The paper argues: (a) with ~350M registrable domains, precomputing all
// hashes is impractical; (b) restricting the dictionary to DNSSEC-enabled
// domains shrinks the attacker's work but still leaves subdomains
// exponential; (c) even a successful attack only reveals queries for
// domains the attacker already enumerated.
#include <iostream>

#include "bench_util.h"
#include "core/dictionary.h"
#include "core/experiment.h"
#include "metrics/table.h"

int main() {
  using namespace lookaside;

  bench::banner("Sec. 6.2.4: dictionary attack on hashed DLV");

  // Run a hashed-DLV workload; collect what the registry observed.
  const std::uint64_t visited =
      std::min<std::uint64_t>(bench::max_scale(2'000), 20'000);
  core::UniverseExperiment::Options options;
  options.remedy = core::RemedyMode::kHashed;
  core::UniverseExperiment experiment(options);
  std::vector<dns::Name> observed;
  experiment.world().registry().set_observer(
      [&observed](const dlv::Observation& obs) {
        observed.push_back(obs.query_name);
      });
  (void)experiment.run_topn(visited);
  std::cout << "Visited " << visited << " domains under hashed DLV; registry"
            << " observed " << observed.size() << " (hashed) queries.\n\n";

  const workload::Universe& universe = experiment.world().universe();
  const dns::Name apex = experiment.world().registry().apex();

  metrics::Table table({"Attacker dictionary", "Entries", "Hash computations",
                        "Recovered", "Recovery rate"});
  struct Scenario {
    const char* label;
    std::uint64_t count;
    bool dnssec_only;
  };
  const Scenario scenarios[] = {
      {"top 1% of universe", visited / 100, false},
      {"top 10% of universe", visited / 10, false},
      {"full visited range", visited, false},
      {"10x visited range (superset)", visited * 10, false},
      {"DNSSEC-enabled only, full range", visited, true},
  };
  for (const Scenario& scenario : scenarios) {
    const auto dictionary =
        core::universe_dictionary(universe, scenario.count,
                                  scenario.dnssec_only);
    const core::DictionaryAttacker attacker(apex, dictionary);
    const auto result = attacker.attack(observed);
    table.row()
        .cell(scenario.label)
        .cell(result.dictionary_size)
        .cell(result.hash_computations)
        .cell(result.recovered)
        .percent_cell(result.recovery_rate());
  }
  table.print(std::cout);

  std::cout
      << "\nReading: recovery is bounded by dictionary coverage of the\n"
         "observed set — hashing converts a passive total observer into an\n"
         "active guesser. The DNSSEC-only refinement cuts the attacker's\n"
         "work by ~10x at the cost of missing everything unsigned, and a\n"
         "real attacker must also cover subdomains (exponentially many,\n"
         "paper §6.2.4). Combined with the TXT/Z-bit signaling remedies,\n"
         "the residual exposure is Case-1-equivalent only.\n";
  return 0;
}
