// Reproduces paper Fig. 8 (number of DLV queries / leaked domains vs. the
// number of queried domains) and Fig. 9 (proportion of leaked domains,
// decaying with log N due to aggressive negative caching).
//
// Paper reference points: 84 leaked at N=100 (84%); 67,838 leaked at N=1M
// (~6.8%). Each ladder entry is an independent experiment (private world,
// resolver and clock), so the ladder shards across the sweep engine with
// --jobs N; the merged report is byte-identical for any job count.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "engine/sweep.h"
#include "metrics/csv.h"
#include "metrics/table.h"

namespace {

/// Paper-reported proportions for reference columns (approximate readings
/// of Fig. 9; the two anchor points are stated in the text).
double paper_proportion(std::uint64_t n) {
  switch (n) {
    case 100: return 0.84;
    case 1'000: return 0.65;
    case 10'000: return 0.45;
    case 100'000: return 0.26;
    case 1'000'000: return 0.068;
    default: return 0.0;
  }
}

struct LadderCell {
  std::uint64_t n = 0;
  lookaside::core::LeakageReport report;
  std::unique_ptr<lookaside::bench::ShardObs> obs;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lookaside;

  bench::banner("Fig. 8 + Fig. 9: DLV leakage vs. number of queried domains");
  std::cout << "Workload: Alexa-like top-N, visited in rank order; one\n"
               "recursive resolver (yum-style config: anchors present, DLV\n"
               "enabled); leaked = distinct Case-2 domains observed at the\n"
               "DLV registry. Set LOOKASIDE_SCALE to cap N; --jobs N shards\n"
               "the ladder across worker threads.\n";

  const bench::ArgParser args(argc, argv);
  bench::ObsSession obs_session(args.obs());
  const unsigned jobs = args.jobs();

  const std::uint64_t max_n = bench::max_scale(1'000'000);
  const std::vector<std::uint64_t> ladder = bench::n_ladder(max_n);

  // Each shard runs one ladder entry end to end. The largest run is the
  // primary shard: it carries the stream sinks (JSONL trace, summary) and,
  // like every shard, a private metrics registry merged below.
  std::vector<LadderCell> cells = engine::run_sharded(
      ladder.size(), jobs, [&](std::size_t i) {
        LadderCell cell;
        cell.n = ladder[i];
        cell.obs = std::make_unique<bench::ShardObs>(
            obs_session, /*primary=*/i + 1 == ladder.size());
        core::UniverseExperiment::Options options;
        options.universe_size = std::max<std::uint64_t>(cell.n, 1'000'000);
        options.tracer = cell.obs->tracer();
        core::UniverseExperiment experiment(options);
        cell.report = experiment.run_topn(cell.n);
        return cell;
      });

  metrics::Table table({"#Domains", "DLV queries", "Case-1", "Leaked (Fig. 8)",
                        "Leaked % (Fig. 9)", "Paper leaked %"});
  metrics::CsvWriter csv({"n", "dlv_queries", "case1", "leaked", "leaked_pct"});

  std::uint64_t total_dlv_queries = 0;
  for (LadderCell& cell : cells) {
    const core::LeakageReport& report = cell.report;
    cell.obs->merge_into(obs_session);
    total_dlv_queries += report.dlv_queries;
    table.row()
        .cell(cell.n)
        .cell(report.dlv_queries)
        .cell(report.distinct_case1_domains)
        .cell(report.distinct_leaked_domains)
        .percent_cell(report.leaked_proportion())
        .percent_cell(paper_proportion(cell.n));
    csv.add_row({std::to_string(cell.n), std::to_string(report.dlv_queries),
                 std::to_string(report.distinct_case1_domains),
                 std::to_string(report.distinct_leaked_domains),
                 metrics::Table::fixed(report.leaked_proportion() * 100, 2)});
    std::cout << "  [done] N=" << metrics::Table::with_commas(cell.n)
              << " leaked="
              << metrics::Table::with_commas(report.distinct_leaked_domains)
              << " (" << metrics::Table::fixed(report.leaked_proportion() * 100, 2)
              << "%)\n";
    std::cout.flush();
  }

  bench::banner("Fig. 8 + Fig. 9 (final table)");
  table.print(std::cout);

  bench::banner("Fig. 8/9 series (CSV)");
  csv.write(std::cout);

  std::cout << "\nPaper anchors: 84 leaked of top-100 (84%); 67,838 leaked of\n"
               "top-1M (~6.8%). The measured proportion should start near the\n"
               "first anchor and decay monotonically toward the second.\n";

  obs_session.finish(std::cout);
  if (obs_session.metrics_enabled()) {
    // Cross-check: the metric stream and the leakage analyzer count the
    // same queries through independent code paths. Every ladder entry
    // contributes a per-shard registry, merged above in ladder order.
    std::cout << "[obs] upstream_queries{server=\"dlv\"} = "
              << obs_session.registry().value("upstream_queries",
                                              {{"server", "dlv"}})
              << " (bench counted " << total_dlv_queries
              << " DLV queries across the ladder)\n";
  }
  return 0;
}
