// Reproduces paper Fig. 8 (number of DLV queries / leaked domains vs. the
// number of queried domains) and Fig. 9 (proportion of leaked domains,
// decaying with log N due to aggressive negative caching).
//
// Paper reference points: 84 leaked at N=100 (84%); 67,838 leaked at N=1M
// (~6.8%); the proportion decays roughly linearly in log10(N).
#include <iostream>

#include "bench_util.h"
#include "core/experiment.h"
#include "metrics/csv.h"
#include "metrics/table.h"

namespace {

/// Paper-reported proportions for reference columns (approximate readings
/// of Fig. 9; the two anchor points are stated in the text).
double paper_proportion(std::uint64_t n) {
  switch (n) {
    case 100: return 0.84;
    case 1'000: return 0.65;
    case 10'000: return 0.45;
    case 100'000: return 0.26;
    case 1'000'000: return 0.068;
    default: return 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lookaside;

  bench::banner("Fig. 8 + Fig. 9: DLV leakage vs. number of queried domains");
  std::cout << "Workload: Alexa-like top-N, visited in rank order; one\n"
               "recursive resolver (yum-style config: anchors present, DLV\n"
               "enabled); leaked = distinct Case-2 domains observed at the\n"
               "DLV registry. Set LOOKASIDE_SCALE to cap N.\n";

  bench::ObsSession obs_session(bench::parse_obs_args(argc, argv));

  const std::uint64_t max_n = bench::max_scale(1'000'000);
  const std::vector<std::uint64_t> ladder = bench::n_ladder(max_n);

  metrics::Table table({"#Domains", "DLV queries", "Case-1", "Leaked (Fig. 8)",
                        "Leaked % (Fig. 9)", "Paper leaked %"});
  metrics::CsvWriter csv({"n", "dlv_queries", "case1", "leaked", "leaked_pct"});

  std::uint64_t final_dlv_queries = 0;
  for (const std::uint64_t n : ladder) {
    core::UniverseExperiment::Options options;
    options.universe_size = std::max<std::uint64_t>(n, 1'000'000);
    // Trace only the largest run, so the exported metrics describe exactly
    // the final table row instead of the whole ladder accumulated.
    if (n == ladder.back()) options.tracer = obs_session.tracer();
    core::UniverseExperiment experiment(options);
    const core::LeakageReport report = experiment.run_topn(n);
    if (n == ladder.back()) final_dlv_queries = report.dlv_queries;

    table.row()
        .cell(n)
        .cell(report.dlv_queries)
        .cell(report.distinct_case1_domains)
        .cell(report.distinct_leaked_domains)
        .percent_cell(report.leaked_proportion())
        .percent_cell(paper_proportion(n));
    csv.add_row({std::to_string(n), std::to_string(report.dlv_queries),
                 std::to_string(report.distinct_case1_domains),
                 std::to_string(report.distinct_leaked_domains),
                 metrics::Table::fixed(report.leaked_proportion() * 100, 2)});
    std::cout << "  [done] N=" << metrics::Table::with_commas(n) << " leaked="
              << metrics::Table::with_commas(report.distinct_leaked_domains)
              << " (" << metrics::Table::fixed(report.leaked_proportion() * 100, 2)
              << "%)\n";
    std::cout.flush();
  }

  bench::banner("Fig. 8 + Fig. 9 (final table)");
  table.print(std::cout);

  bench::banner("Fig. 8/9 series (CSV)");
  csv.write(std::cout);

  std::cout << "\nPaper anchors: 84 leaked of top-100 (84%); 67,838 leaked of\n"
               "top-1M (~6.8%). The measured proportion should start near the\n"
               "first anchor and decay monotonically toward the second.\n";

  obs_session.finish(std::cout);
  if (obs_session.metrics_enabled()) {
    // Cross-check: the metric stream and the leakage analyzer count the
    // same queries through independent code paths.
    std::cout << "[obs] upstream_queries{server=\"dlv\"} = "
              << obs_session.registry().value("upstream_queries",
                                              {{"server", "dlv"}})
              << " (bench counted " << final_dlv_queries
              << " DLV queries at N=" << ladder.back() << ")\n";
  }
  return 0;
}
