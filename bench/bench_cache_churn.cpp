// Cache-pressure leakage study: long-horizon TTL churn under a swept cache
// size cap (DESIGN.md §4f).
//
// The paper's suppression result (Figs. 8-9) assumes the aggressive NSEC
// cache keeps every denial proof it ever validated. Production resolvers do
// not: BIND's max-cache-size and Unbound's msg-cache-size/rrset-cache-size
// bound cache memory, and under pressure the eviction clock throws NSEC
// proofs out with everything else. Every evicted proof re-opens the paper's
// Case-2 channel — the next browse of a covered domain sends a fresh DLV
// query instead of being suppressed locally. This driver quantifies that:
// one browsing population revisits the top-N domains for several rounds
// with TTL churn between rounds (entries expire and are re-validated), and
// the cache byte cap sweeps from unbounded down to starvation. Reported per
// cap: Case-2 query volume, distinct leaked domains, the lifecycle counters
// (evicted / evicted.nsec / expired_swept) and the cache's byte telemetry.
//
// Contracts checked before exit (nonzero on violation):
//   - capped cells end the run with cache.bytes <= cap, evictions > 0;
//   - Case-2 leakage is monotone: a smaller cap never leaks less;
//   - the unbounded cell never evicts.
//
// Flags: --smoke (tiny run for CI), --rounds=R / --top=N (strict-numeric
// overrides, bench::parse_u64_flag), --out=PATH (default BENCH_cache.json),
// --jobs N (cap grid shards across workers; output byte-identical for any
// jobs value), plus the shared observability flags from bench_util.h.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"
#include "engine/sweep.h"
#include "metrics/csv.h"
#include "metrics/table.h"

namespace {

struct CellResult {
  std::uint64_t cap_bytes = 0;  // 0 = unbounded
  bool synthesis = false;       // RFC 8198 + verdict-cache leg (§4j)
  std::uint64_t case2_queries = 0;
  std::uint64_t distinct_leaked = 0;
  std::uint64_t dlv_queries = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_peak_bytes = 0;
  std::uint64_t evicted = 0;
  std::uint64_t evicted_nsec = 0;
  std::uint64_t expired_swept = 0;
  std::uint64_t nsec_entries = 0;
  std::uint64_t synthesized = 0;      // denials answered from synthesis
  std::uint64_t negative_elided = 0;  // exact negatives skipped (covered)
  std::uint64_t rsa_skipped = 0;      // verdict-cache RSA verifies saved
  double virtual_seconds = 0;
};

CellResult run_cell(std::uint64_t cap_bytes, bool synthesis,
                    std::uint64_t top_n, std::uint64_t rounds,
                    std::uint64_t universe, lookaside::obs::Tracer* tracer) {
  using namespace lookaside;

  core::UniverseExperiment::Options options;
  options.universe_size = universe;
  options.resolver_config = resolver::ResolverConfig::bind_yum();
  options.resolver_config.max_cache_bytes = cap_bytes;
  options.resolver_config.ns_fetch_probability = 0.0;
  if (synthesis) {
    options.resolver_config.aggressive_synthesis = true;
    options.resolver_config.verdict_cache_entries =
        resolver::ResolverConfig::kDefaultVerdictCacheEntries;
  }
  options.tracer = tracer;
  core::UniverseExperiment experiment(options);

  // One round browses the top-N in rank order; the inter-round gap is
  // tuned against the registry's 3600 s TTLs so each generation of cached
  // proofs expires about two rounds after it was stored — the sweep and
  // the eviction clock both stay busy for the whole horizon.
  constexpr double kInterRoundGapSeconds = 2'100.0;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    for (std::uint64_t rank = 1; rank <= top_n; ++rank) {
      (void)experiment.stub().visit(
          experiment.world().universe().domain_at(rank));
    }
    if (round + 1 < rounds) {
      experiment.clock().advance_seconds(kInterRoundGapSeconds);
    }
  }

  const core::LeakageReport report = experiment.analyzer().report();
  const resolver::ResolverCache& cache = experiment.resolver().cache();
  CellResult cell;
  cell.cap_bytes = cap_bytes;
  cell.synthesis = synthesis;
  cell.case2_queries = report.case2_queries;
  cell.distinct_leaked = report.distinct_leaked_domains;
  cell.dlv_queries = report.dlv_queries;
  cell.cache_bytes = cache.bytes();
  cell.cache_peak_bytes = cache.peak_bytes();
  cell.evicted = cache.counters().value("cache.evicted");
  cell.evicted_nsec = cache.counters().value("cache.evicted.nsec");
  cell.expired_swept = cache.counters().value("cache.expired_swept");
  cell.nsec_entries =
      cache.nsec_count(options.resolver_config.dlv_domain);
  cell.synthesized =
      experiment.resolver().stats().value("dlv.suppressed.synthesized") +
      experiment.resolver().stats().value("cache.synth_answer");
  cell.negative_elided =
      experiment.resolver().stats().value("cache.negative_elided");
  cell.rsa_skipped =
      experiment.resolver().validator().counters().value(
          "verdict.rsa_skipped");
  cell.virtual_seconds = experiment.clock().now_seconds();
  return cell;
}

std::string cap_label(std::uint64_t cap_bytes) {
  if (cap_bytes == 0) return "unbounded";
  if (cap_bytes % (1024 * 1024) == 0) {
    return std::to_string(cap_bytes / (1024 * 1024)) + " MiB";
  }
  if (cap_bytes % 1024 == 0) return std::to_string(cap_bytes / 1024) + " KiB";
  return std::to_string(cap_bytes) + " B";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lookaside;

  const bench::ArgParser args(argc, argv, {"top", "rounds"});
  const bool smoke = args.smoke();
  const std::string out_path = args.out("BENCH_cache.json");

  bench::banner("Cache-pressure leakage study: byte cap x TTL churn");
  std::cout << "Workload: " << (smoke ? "smoke" : "full")
            << " TTL-churn browse (rounds of top-N revisits with a 2100 s\n"
               "gap against 3600 s registry TTLs), BIND yum defaults (DLV +\n"
               "aggressive NSEC caching), cache byte cap sweeping down from\n"
               "unbounded. Set LOOKASIDE_SCALE to cap N.\n";

  bench::ObsSession obs_session(args.obs());
  // The leak ledger is not optional here: the cap -> Case-2 curve is only
  // interpretable with the per-cause breakdown (cold-miss vs ttl-expiry vs
  // eviction vs nsec-gap), so every cell carries a ledger and the JSON
  // gains a "causes" object whose counts must sum to case2_queries.
  obs_session.enable_ledger();

  // Grid tuning: the unbounded footprint at the default scale is a few
  // hundred KiB; the capped rungs sit at roughly 1/2, 1/8 and 1/32 of it
  // so the smallest rung is genuinely starved. --top/--rounds override the
  // workload (strict numeric parses).
  const std::uint64_t top_n =
      args.numeric("top", smoke ? 250 : bench::max_scale(2'000));
  const std::uint64_t rounds = args.numeric("rounds", smoke ? 3 : 4);
  const std::uint64_t universe = std::max<std::uint64_t>(top_n * 5, 10'000);
  const std::vector<std::uint64_t> caps =
      smoke ? std::vector<std::uint64_t>{0, 48 * 1024, 16 * 1024, 6 * 1024}
            : std::vector<std::uint64_t>{0, 256 * 1024, 64 * 1024, 16 * 1024};

  metrics::Table table({"Synthesis", "Cache cap", "DLV queries",
                        "Case-2 queries", "Distinct leaked", "Evicted",
                        "Evicted NSEC", "Swept", "Synthesized",
                        "RSA skipped", "End bytes"});
  metrics::CsvWriter csv({"synthesis", "cap_bytes", "dlv_queries",
                          "case2_queries", "distinct_leaked", "evicted",
                          "evicted_nsec", "expired_swept", "cache_peak_bytes",
                          "cache_bytes", "nsec_entries", "synthesized",
                          "negative_elided", "rsa_skipped"});

  // Two legs over the same cap sweep: the paper-era configuration (leg 0,
  // byte-identical to the v2 study) and the §4j production configuration
  // with RFC 8198 synthesis + the verdict cache on (leg 1). Cells are
  // leg-major, caps descending within each leg.
  struct GridCell {
    CellResult result;
    std::unique_ptr<bench::ShardObs> obs;
  };
  const unsigned jobs = args.jobs();
  std::vector<GridCell> grid =
      engine::run_sharded(caps.size() * 2, jobs, [&](std::size_t index) {
        GridCell cell;
        cell.obs = std::make_unique<bench::ShardObs>(obs_session,
                                                     /*primary=*/index == 0);
        cell.result = run_cell(caps[index % caps.size()],
                               /*synthesis=*/index >= caps.size(), top_n,
                               rounds, universe, cell.obs->tracer());
        return cell;
      });

  bool ok = true;
  const auto fail = [&ok](const std::string& what) {
    std::cout << "  [FAIL] " << what << "\n";
    ok = false;
  };

  std::string cells_json;
  for (std::size_t index = 0; index < grid.size(); ++index) {
    const CellResult& cell = grid[index].result;

    // Ledger acceptance per cell: the trace-derived ledger must agree with
    // the registry-side analyzer exactly, every record must carry a cause
    // tag, and every record's query_id must resolve to a complete span
    // chain that reached the DLV registry.
    const obs::LeakLedger* ledger = grid[index].obs->ledger();
    const obs::SpanTimeline* timeline = grid[index].obs->timeline();
    std::string causes_json = "{";
    if (ledger != nullptr) {
      if (ledger->case2_total() != cell.case2_queries) {
        fail("cap " + cap_label(cell.cap_bytes) + ": ledger counted " +
             std::to_string(ledger->case2_total()) +
             " Case-2 records but the registry saw " +
             std::to_string(cell.case2_queries));
      }
      const std::size_t broken =
          timeline == nullptr
              ? ledger->records().size()
              : obs::broken_leak_chains(*timeline, ledger->records());
      if (broken != 0) {
        fail("cap " + cap_label(cell.cap_bytes) + ": " +
             std::to_string(broken) +
             " ledger records lack a complete query->resolver->DLV chain");
      }
      bool first_cause = true;
      for (const auto& [cause, count] : ledger->cause_totals()) {
        if (!first_cause) causes_json += ",";
        first_cause = false;
        causes_json += "\"" + cause + "\":" + std::to_string(count);
      }
    }
    causes_json += "}";
    const std::uint64_t ledger_case2 =
        ledger == nullptr ? 0 : ledger->case2_total();

    grid[index].obs->merge_into(obs_session);
    table.row()
        .cell(cell.synthesis ? "on" : "off")
        .cell(cap_label(cell.cap_bytes))
        .cell(cell.dlv_queries)
        .cell(cell.case2_queries)
        .cell(cell.distinct_leaked)
        .cell(cell.evicted)
        .cell(cell.evicted_nsec)
        .cell(cell.expired_swept)
        .cell(cell.synthesized)
        .cell(cell.rsa_skipped)
        .cell(cell.cache_bytes);
    csv.add_row({cell.synthesis ? "1" : "0",
                 std::to_string(cell.cap_bytes),
                 std::to_string(cell.dlv_queries),
                 std::to_string(cell.case2_queries),
                 std::to_string(cell.distinct_leaked),
                 std::to_string(cell.evicted),
                 std::to_string(cell.evicted_nsec),
                 std::to_string(cell.expired_swept),
                 std::to_string(cell.cache_peak_bytes),
                 std::to_string(cell.cache_bytes),
                 std::to_string(cell.nsec_entries),
                 std::to_string(cell.synthesized),
                 std::to_string(cell.negative_elided),
                 std::to_string(cell.rsa_skipped)});
    if (!cells_json.empty()) cells_json += ",";
    cells_json += std::string("{\"synthesis\":") +
                  (cell.synthesis ? "true" : "false") +
                  ",\"cap_bytes\":" + std::to_string(cell.cap_bytes) +
                  ",\"dlv_queries\":" + std::to_string(cell.dlv_queries) +
                  ",\"case2_queries\":" + std::to_string(cell.case2_queries) +
                  ",\"distinct_leaked\":" + std::to_string(cell.distinct_leaked) +
                  ",\"evicted\":" + std::to_string(cell.evicted) +
                  ",\"evicted_nsec\":" + std::to_string(cell.evicted_nsec) +
                  ",\"expired_swept\":" + std::to_string(cell.expired_swept) +
                  ",\"cache_peak_bytes\":" +
                  std::to_string(cell.cache_peak_bytes) +
                  ",\"cache_bytes\":" + std::to_string(cell.cache_bytes) +
                  ",\"nsec_entries\":" + std::to_string(cell.nsec_entries) +
                  ",\"synthesized\":" + std::to_string(cell.synthesized) +
                  ",\"negative_elided\":" +
                  std::to_string(cell.negative_elided) +
                  ",\"rsa_skipped\":" + std::to_string(cell.rsa_skipped) +
                  ",\"ledger_case2\":" + std::to_string(ledger_case2) +
                  ",\"causes\":" + causes_json +
                  ",\"virtual_seconds\":" +
                  metrics::Table::fixed(cell.virtual_seconds, 3) + "}";
    std::cout << "  [done] synthesis=" << (cell.synthesis ? "on" : "off")
              << " cap=" << cap_label(cell.cap_bytes)
              << " case2=" << cell.case2_queries
              << " evicted=" << cell.evicted << "\n";
    std::cout.flush();
  }

  bench::banner("Cap sweep (final table)");
  table.print(std::cout);

  bench::banner("Cap series (CSV)");
  csv.write(std::cout);

  // -- Contract checks -------------------------------------------------------
  // Within each leg the grid is descending capacity (unbounded first), so
  // Case-2 leakage must be non-decreasing along it: evicting more proofs
  // can only send more queries to the registry, never fewer.
  const std::size_t leg_size = caps.size();
  for (std::size_t leg = 0; leg < 2; ++leg) {
    const char* leg_name = leg == 0 ? "off" : "on";
    const CellResult& unbounded = grid[leg * leg_size].result;
    if (unbounded.evicted != 0) {
      fail(std::string("synthesis=") + leg_name + " unbounded cell evicted " +
           std::to_string(unbounded.evicted) +
           " entries; cap 0 must never evict");
    }
    for (std::size_t index = 1; index < leg_size; ++index) {
      const CellResult& wider = grid[leg * leg_size + index - 1].result;
      const CellResult& tighter = grid[leg * leg_size + index].result;
      if (tighter.case2_queries < wider.case2_queries) {
        fail(std::string("synthesis=") + leg_name +
             " leakage not monotone: cap " + cap_label(tighter.cap_bytes) +
             " leaked " + std::to_string(tighter.case2_queries) +
             " Case-2 queries < " + std::to_string(wider.case2_queries) +
             " at cap " + cap_label(wider.cap_bytes));
      }
      if (tighter.cap_bytes > 0 && tighter.cache_bytes > tighter.cap_bytes) {
        fail(std::string("synthesis=") + leg_name + " cap " +
             cap_label(tighter.cap_bytes) + " ended the run at " +
             std::to_string(tighter.cache_bytes) + " bytes, over its cap");
      }
      if (tighter.cap_bytes > 0 && tighter.evicted == 0) {
        fail(std::string("synthesis=") + leg_name + " cap " +
             cap_label(tighter.cap_bytes) +
             " never evicted; the rung is not exerting pressure");
      }
    }
  }
  // Cross-leg (§4j acceptance): synthesis must bend the capped curve down —
  // never above the paper-era leg at any cap, strictly below at two or
  // more rungs — and the repeat-heavy workload must actually exercise the
  // verdict cache.
  std::size_t strict_wins = 0;
  for (std::size_t index = 0; index < leg_size; ++index) {
    const CellResult& off = grid[index].result;
    const CellResult& on = grid[leg_size + index].result;
    if (on.case2_queries > off.case2_queries) {
      fail("synthesis leaked MORE at cap " + cap_label(off.cap_bytes) + ": " +
           std::to_string(on.case2_queries) + " > " +
           std::to_string(off.case2_queries));
    }
    if (on.case2_queries < off.case2_queries) ++strict_wins;
    if (on.rsa_skipped == 0) {
      fail("synthesis leg at cap " + cap_label(off.cap_bytes) +
           " never hit the verdict cache on a repeat-heavy workload");
    }
    if (off.rsa_skipped != 0 || off.synthesized != 0 ||
        off.negative_elided != 0) {
      fail("paper-era leg at cap " + cap_label(off.cap_bytes) +
           " shows §4j activity; the off leg must be byte-identical to v2");
    }
  }
  if (strict_wins < 2) {
    fail("synthesis won strictly at only " + std::to_string(strict_wins) +
         " caps; the curve must bend down at >= 2 rungs");
  }

  std::ofstream out(out_path);
  out << "{\"schema\":\"bench_cache_churn/v3\",\"workload\":{\"top_n\":"
      << top_n << ",\"rounds\":" << rounds << ",\"universe\":" << universe
      << ",\"inter_round_gap_s\":2100,\"smoke\":" << (smoke ? "true" : "false")
      << "},\"checks_ok\":" << (ok ? "true" : "false") << ",\"cells\":["
      << cells_json << "]}\n";
  const bool wrote = out.good();
  out.close();
  std::cout << "\n[out] " << out_path << (wrote ? "" : " (WRITE FAILED)")
            << "\n";

  std::cout << "\nReading: the unbounded column reproduces the paper's\n"
               "suppression effect — after the first round nearly every\n"
               "denial is answered from the NSEC cache. Each tighter cap\n"
               "evicts more proofs (evicted.nsec), and every evicted proof\n"
               "converts a would-be suppressed denial into a fresh Case-2\n"
               "query at the registry: the suppression the paper relies on\n"
               "degrades in direct proportion to cache pressure.\n";

  obs_session.finish(std::cout);
  if (!ok) {
    std::cout << "\nFAILED: cache-pressure contract violated (see [FAIL]).\n";
    return 1;
  }
  return wrote ? 0 : 1;
}
