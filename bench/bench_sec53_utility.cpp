// Reproduces §5.3 "validation utility of DLV": how many DLV queries get
// "No error" (a record existed — Case-1) versus "No such name" (pure
// leakage — Case-2) when the Alexa-like top-10k is resolved.
//
// Paper reference: <1.2% of DLV queries received "No error" (1,168
// domains); ~98.8% of DLV queries were leakage. Note the paper's query
// denominator includes strip/retry traffic at the live registry; the
// domain-level count is the directly comparable number.
#include <iostream>

#include "bench_util.h"
#include "core/experiment.h"
#include "metrics/table.h"

int main() {
  using namespace lookaside;

  bench::banner("Sec. 5.3: validation utility of DLV (top-10k)");

  const std::uint64_t n = std::min<std::uint64_t>(bench::max_scale(10'000),
                                                  10'000);
  core::UniverseExperiment::Options options;
  core::UniverseExperiment experiment(options);
  const core::LeakageReport report = experiment.run_topn(n);

  metrics::Table table({"Metric", "Measured", "Paper"});
  table.row().cell("domains resolved").cell(report.domains_visited).cell("10,000");
  table.row().cell("DLV queries observed").cell(report.dlv_queries).cell("-");
  table.row()
      .cell("queries answered 'No error' (Case-1)")
      .cell(report.case1_queries)
      .cell("<1.2% of queries");
  table.row()
      .cell("domains with DLV records (distinct)")
      .cell(report.distinct_case1_domains)
      .cell("1,168");
  table.row()
      .cell("utility fraction of DLV queries")
      .cell(metrics::Table::fixed(report.utility_fraction() * 100, 2) + "%")
      .cell("1.2%");
  table.row()
      .cell("leakage fraction of DLV queries")
      .cell(metrics::Table::fixed((1.0 - report.utility_fraction()) * 100, 2) +
            "%")
      .cell("98.8%");
  table.row()
      .cell("distinct leaked domains (Case-2)")
      .cell(report.distinct_leaked_domains)
      .cell("-");
  table.print(std::cout);

  std::cout << "\nReading: the DLV server observes thousands of domains while\n"
               "providing validation utility for only ~1k of 10k — the paper's\n"
               "core privacy finding. (Our per-domain query count is ~1, the\n"
               "live registry saw ~10x repeats, so the utility *fraction of\n"
               "queries* lands higher here; the domain counts line up.)\n";
  return 0;
}
